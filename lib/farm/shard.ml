(* One farm shard: a {!Gmt_service.Server} plus the cache-warming
   replication pusher.

   Replication is asynchronous and best-effort. The cache's [on_store]
   hook (fired after a compile-served miss stores its artifact) enqueues
   the entry; a dedicated pusher domain encodes it and ships one [put]
   to the key's ring successor. The serving request path never blocks on
   a peer: the hook is an enqueue under a mutex, nothing more. The
   successor ingests the entry {e cold} (below its own LRU traffic) and
   without firing its own hook — so a push can displace only other
   replicas and can never cascade around the ring.

   Consistency: entries are content-addressed (the fingerprint covers
   program, technique, and machine config) and compilation is
   deterministic, so a replica can never disagree with a locally
   compiled artifact — replication can only ever turn a future miss into
   a hit. Losing a push loses warmth, not correctness. *)

module Cache = Gmt_cache.Cache
module Client = Gmt_service.Client
module Server = Gmt_service.Server
module Registry = Gmt_telemetry.Registry
module Events = Gmt_telemetry.Events
module Json = Gmt_obs.Json

type config = {
  server : Server.config;
  self : string;  (** this shard's ring name *)
  peers : (string * string) list;
      (** (name, endpoint) of every farm member, this one included *)
}

(* Bounded queue: replication is warmth, not correctness, so under
   sustained compile pressure dropping a push beats growing without
   bound. *)
let queue_bound = 1024

type pusher = {
  ring : Ring.t;
  endpoints : (string, string) Hashtbl.t;
  self : string;
  q : (string * Cache.entry) Queue.t;
  m : Mutex.t;
  c : Condition.t;
  mutable stopping : bool;
  c_pushed : Registry.counter option;
  c_dropped : Registry.counter option;
  mutable dom : unit Domain.t option;
}

type t = { server : Server.t; pusher : pusher option }

let server t = t.server

(* First ring successor of [key] that is not this shard. *)
let target p key =
  List.find_opt
    (fun s -> not (String.equal s p.self))
    (Ring.successors p.ring key 2)

let push p key entry =
  match target p key with
  | None -> ()
  | Some peer -> (
    match Hashtbl.find_opt p.endpoints peer with
    | None -> ()
    | Some ep -> (
      let encoded = Cache.encode_entry entry in
      match Client.rpc ~socket:ep (Client.put_request ~key ~entry:encoded ())
      with
      | Ok _ -> ( match p.c_pushed with Some c -> Registry.incr c | None -> ())
      | Error _ ->
        Events.emit ~severity:Events.Warn ~kind:"farm.replication.failed"
          [ ("peer", Json.Str peer); ("key", Json.Str key) ]))

let pusher_loop p =
  let rec go () =
    Mutex.lock p.m;
    while Queue.is_empty p.q && not p.stopping do
      Condition.wait p.c p.m
    done;
    match Queue.take_opt p.q with
    | Some (key, entry) ->
      Mutex.unlock p.m;
      (try push p key entry with _ -> ());
      go ()
    | None ->
      (* Stopping with a drained queue. *)
      Mutex.unlock p.m
  in
  go ()

let enqueue p key entry =
  Mutex.lock p.m;
  if p.stopping then Mutex.unlock p.m
  else if Queue.length p.q >= queue_bound then begin
    Mutex.unlock p.m;
    (match p.c_dropped with Some c -> Registry.incr c | None -> ());
    Events.emit ~severity:Events.Warn ~kind:"farm.replication.dropped"
      [ ("key", Json.Str key) ]
  end
  else begin
    Queue.add (key, entry) p.q;
    Condition.signal p.c;
    Mutex.unlock p.m
  end

let start (cfg : config) =
  let server = Server.start cfg.server in
  let pusher =
    if List.length cfg.peers < 2 then None
    else begin
      let endpoints = Hashtbl.create 8 in
      List.iter (fun (n, ep) -> Hashtbl.replace endpoints n ep) cfg.peers;
      let reg = Server.registry server in
      let p =
        {
          ring = Ring.create (List.map fst cfg.peers);
          endpoints;
          self = cfg.self;
          q = Queue.create ();
          m = Mutex.create ();
          c = Condition.create ();
          stopping = false;
          c_pushed =
            Option.map (fun r -> Registry.counter r "farm.replication.pushed")
              reg;
          c_dropped =
            Option.map (fun r -> Registry.counter r "farm.replication.dropped")
              reg;
          dom = None;
        }
      in
      p.dom <- Some (Domain.spawn (fun () -> pusher_loop p));
      Cache.set_on_store (Server.cache server) (Some (enqueue p));
      Some p
    end
  in
  { server; pusher }

let request_stop t = Server.request_stop t.server

let join t =
  Server.join t.server;
  match t.pusher with
  | None -> ()
  | Some p ->
    (* The server is drained: no request can store (and so enqueue)
       anymore. Let the pusher finish the queue, then stop it. *)
    Cache.set_on_store (Server.cache t.server) None;
    Mutex.lock p.m;
    p.stopping <- true;
    Condition.broadcast p.c;
    Mutex.unlock p.m;
    (match p.dom with Some d -> Domain.join d | None -> ());
    p.dom <- None

let stop t =
  request_stop t;
  join t
