(* Graph algorithm substrate: digraph, SCC, topological sort, dominators,
   max-flow/min-cut and the multi-commodity heuristic. *)

module Digraph = Gmt_graphalg.Digraph
module Scc = Gmt_graphalg.Scc
module Topo = Gmt_graphalg.Topo
module Dom = Gmt_graphalg.Dom
module Maxflow = Gmt_graphalg.Maxflow
module Multicut = Gmt_graphalg.Multicut

let graph edges n =
  let g = Digraph.create n in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
  g

(* ------------------------- digraph ------------------------- *)

let test_digraph_basic () =
  let g = graph [ (0, 1); (1, 2); (0, 2) ] 3 in
  Alcotest.(check int) "nodes" 3 (Digraph.n_nodes g);
  Alcotest.(check int) "edges" 3 (Digraph.n_edges g);
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (Digraph.succs g 0);
  Alcotest.(check (list int)) "preds 2" [ 1; 0 ] (Digraph.preds g 2);
  Alcotest.(check bool) "mem" true (Digraph.mem_edge g 0 1);
  Alcotest.(check bool) "not mem" false (Digraph.mem_edge g 2 0)

let test_digraph_dedup () =
  let g = graph [ (0, 1); (0, 1); (0, 1) ] 2 in
  Alcotest.(check int) "parallel edges collapse" 1 (Digraph.n_edges g)

let test_digraph_transpose () =
  let g = graph [ (0, 1); (1, 2) ] 3 in
  let t = Digraph.transpose g in
  Alcotest.(check (list int)) "transposed succs" [ 1 ] (Digraph.succs t 2);
  Alcotest.(check (list int)) "transposed succs 1" [ 0 ] (Digraph.succs t 1)

let test_digraph_reachable () =
  let g = graph [ (0, 1); (1, 2); (3, 4) ] 5 in
  let r = Digraph.reachable g [ 0 ] in
  Alcotest.(check (list bool))
    "reach from 0"
    [ true; true; true; false; false ]
    (Array.to_list r)

let test_digraph_bounds () =
  let g = Digraph.create 2 in
  Alcotest.check_raises "oob" (Invalid_argument "Digraph: node out of range")
    (fun () -> Digraph.add_edge g 0 5)

(* ------------------------- scc ------------------------- *)

let test_scc_simple_cycle () =
  let g = graph [ (0, 1); (1, 2); (2, 0); (2, 3) ] 4 in
  let comp, n = Scc.components g in
  Alcotest.(check int) "two components" 2 n;
  Alcotest.(check bool) "cycle together" true
    (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  Alcotest.(check bool) "3 separate" true (comp.(3) <> comp.(0))

let test_scc_topological_numbering () =
  (* Edge between distinct components goes from higher to lower index. *)
  let g = graph [ (0, 1); (1, 2); (2, 1); (2, 3) ] 4 in
  let comp, _ = Scc.components g in
  Alcotest.(check bool) "0 before {1,2}" true (comp.(0) > comp.(1));
  Alcotest.(check bool) "{1,2} before 3" true (comp.(1) > comp.(3))

let test_scc_condense_acyclic () =
  let g = graph [ (0, 1); (1, 2); (2, 0); (3, 0); (2, 4) ] 5 in
  let dag, comp = Scc.condense g in
  Alcotest.(check bool) "condensation acyclic" true (Topo.is_acyclic dag);
  Alcotest.(check int) "3 comps" 3 (Digraph.n_nodes dag);
  let members = Scc.members comp 3 in
  let sizes =
    List.sort compare (Array.to_list (Array.map List.length members))
  in
  Alcotest.(check (list int)) "sizes" [ 1; 1; 3 ] sizes

let test_scc_self_loop () =
  let g = graph [ (0, 0); (0, 1) ] 2 in
  let _, n = Scc.components g in
  Alcotest.(check int) "self loop is its own scc" 2 n

(* ------------------------- topo ------------------------- *)

let test_topo_order () =
  let g = graph [ (2, 0); (0, 1); (2, 1) ] 3 in
  let order = Topo.sort g in
  let pos = Array.make 3 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  Digraph.iter_edges g (fun u v ->
      Alcotest.(check bool) "edge respects order" true (pos.(u) < pos.(v)))

let test_topo_cycle () =
  let g = graph [ (0, 1); (1, 0) ] 2 in
  Alcotest.(check bool) "cyclic" false (Topo.is_acyclic g);
  Alcotest.(check bool) "sort_opt none" true (Topo.sort_opt g = None)

(* ------------------------- dom ------------------------- *)

(* Diamond: 0 -> 1,2 -> 3 *)
let test_dom_diamond () =
  let g = graph [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4 in
  let d = Dom.compute g 0 in
  Alcotest.(check (option int)) "idom 1" (Some 0) (Dom.idom d 1);
  Alcotest.(check (option int)) "idom 2" (Some 0) (Dom.idom d 2);
  Alcotest.(check (option int)) "idom 3" (Some 0) (Dom.idom d 3);
  Alcotest.(check bool) "0 dom 3" true (Dom.dominates d 0 3);
  Alcotest.(check bool) "1 not dom 3" false (Dom.dominates d 1 3);
  Alcotest.(check bool) "reflexive" true (Dom.dominates d 3 3)

let test_dom_loop () =
  (* 0 -> 1 -> 2 -> 1, 2 -> 3 *)
  let g = graph [ (0, 1); (1, 2); (2, 1); (2, 3) ] 4 in
  let d = Dom.compute g 0 in
  Alcotest.(check (option int)) "idom 2" (Some 1) (Dom.idom d 2);
  Alcotest.(check (option int)) "idom 3" (Some 2) (Dom.idom d 3);
  Alcotest.(check (list int)) "dominators of 3" [ 0; 1; 2; 3 ]
    (List.sort compare (Dom.dominators d 3))

let test_dom_unreachable () =
  let g = graph [ (0, 1); (2, 3) ] 4 in
  let d = Dom.compute g 0 in
  Alcotest.(check bool) "2 unreachable" false (Dom.is_reachable d 2);
  Alcotest.(check bool) "no false dominance" false (Dom.dominates d 0 2)

let test_dom_children () =
  let g = graph [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4 in
  let d = Dom.compute g 0 in
  Alcotest.(check (list int)) "children of 0" [ 1; 2; 3 ]
    (List.sort compare (Dom.children d 0))

(* ------------------------- maxflow ------------------------- *)

let test_maxflow_simple () =
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_arc net 0 1 3);
  ignore (Maxflow.add_arc net 0 2 2);
  ignore (Maxflow.add_arc net 1 3 2);
  ignore (Maxflow.add_arc net 2 3 3);
  Alcotest.(check int) "max flow" 4 (Maxflow.max_flow net ~src:0 ~sink:3)

let test_maxflow_bottleneck () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_arc net 0 1 10);
  ignore (Maxflow.add_arc net 1 2 1);
  Alcotest.(check int) "bottleneck" 1 (Maxflow.max_flow net ~src:0 ~sink:2)

let test_maxflow_disconnected () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_arc net 0 1 5);
  Alcotest.(check int) "no path" 0 (Maxflow.max_flow net ~src:0 ~sink:2)

let test_maxflow_infinite () =
  let net = Maxflow.create 2 in
  ignore (Maxflow.add_arc net 0 1 Maxflow.infinity);
  Alcotest.(check bool) "infinite" true
    (Maxflow.max_flow net ~src:0 ~sink:1 >= Maxflow.infinity)

let test_maxflow_duplicate_accumulates () =
  let net = Maxflow.create 2 in
  let a = Maxflow.add_arc net 0 1 2 in
  let b = Maxflow.add_arc net 0 1 3 in
  Alcotest.(check int) "same id" a b;
  Alcotest.(check int) "sum" 5 (Maxflow.max_flow net ~src:0 ~sink:1)

let test_mincut_arcs () =
  (* 0 -> 1 (1), 0 -> 2 (1), 1 -> 3 (inf), 2 -> 3 (inf): cut at sources *)
  let net = Maxflow.create 4 in
  let a01 = Maxflow.add_arc net 0 1 1 in
  let a02 = Maxflow.add_arc net 0 2 1 in
  ignore (Maxflow.add_arc net 1 3 Maxflow.infinity);
  ignore (Maxflow.add_arc net 2 3 Maxflow.infinity);
  let cut = Maxflow.min_cut net ~src:0 ~sink:3 in
  Alcotest.(check int) "value" 2 cut.Maxflow.value;
  let ids = List.sort compare (List.map (fun (_, _, id) -> id) cut.Maxflow.arcs) in
  Alcotest.(check (list int)) "cut arcs" (List.sort compare [ a01; a02 ]) ids

let test_mincut_includes_zero_cap () =
  (* A zero-capacity arc crossing the cut must be reported. *)
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_arc net 0 1 5);
  ignore (Maxflow.add_arc net 1 3 1);
  ignore (Maxflow.add_arc net 1 2 0);
  ignore (Maxflow.add_arc net 2 3 4);
  let cut = Maxflow.min_cut net ~src:0 ~sink:3 in
  Alcotest.(check int) "value" 1 cut.Maxflow.value;
  (* src side = {0,1,2} (2 reachable? no cap)... src side is {0,1}; the
     cut must include both (1,3) cap 1 and (1,2) cap 0. *)
  Alcotest.(check int) "two crossing arcs" 2 (List.length cut.Maxflow.arcs)

(* ------------------------- multicut ------------------------- *)

let test_multicut_two_pairs_share () =
  (* chain 0 -> 1 -> 2 -> 3 with pairs (0,3) and (1,3): one shared arc
     (2,3) disconnects both if it is the cheapest. *)
  let arcs =
    [
      { Multicut.u = 0; v = 1; cap = 5; tag = 0 };
      { Multicut.u = 1; v = 2; cap = 5; tag = 1 };
      { Multicut.u = 2; v = 3; cap = 1; tag = 2 };
    ]
  in
  let r = Multicut.solve ~n:4 ~arcs ~pairs:[ (0, 3); (1, 3) ] in
  Alcotest.(check (list int)) "single shared cut" [ 2 ] r.Multicut.cut_tags;
  Alcotest.(check int) "cost" 1 r.Multicut.total_cost

let test_multicut_disjoint_pairs () =
  (* Two disjoint chains: both must be cut. *)
  let arcs =
    [
      { Multicut.u = 0; v = 1; cap = 2; tag = 0 };
      { Multicut.u = 2; v = 3; cap = 3; tag = 1 };
    ]
  in
  let r = Multicut.solve ~n:4 ~arcs ~pairs:[ (0, 1); (2, 3) ] in
  Alcotest.(check (list int)) "both" [ 0; 1 ]
    (List.sort compare r.Multicut.cut_tags);
  Alcotest.(check int) "cost" 5 r.Multicut.total_cost

let test_multicut_validates () =
  (* After removing cut arcs, no pair's source reaches its sink. *)
  let arcs =
    [
      { Multicut.u = 0; v = 1; cap = 1; tag = 0 };
      { Multicut.u = 0; v = 2; cap = 1; tag = 1 };
      { Multicut.u = 1; v = 3; cap = 1; tag = 2 };
      { Multicut.u = 2; v = 3; cap = 1; tag = 3 };
      { Multicut.u = 1; v = 4; cap = 1; tag = 4 };
    ]
  in
  let pairs = [ (0, 3); (0, 4) ] in
  let r = Multicut.solve ~n:5 ~arcs ~pairs in
  let remaining =
    List.filter (fun a -> not (List.mem a.Multicut.tag r.Multicut.cut_tags)) arcs
  in
  let g = Digraph.create 5 in
  List.iter (fun a -> Digraph.add_edge g a.Multicut.u a.Multicut.v) remaining;
  List.iter
    (fun (s, t) ->
      let reach = Digraph.reachable g [ s ] in
      Alcotest.(check bool) "disconnected" false reach.(t))
    pairs

(* QCheck property: min_cut's reported arcs really disconnect src from
   sink, and their capacity sum equals the flow value. *)
let prop_mincut_disconnects =
  QCheck.Test.make ~count:200 ~name:"min-cut disconnects and matches flow"
    QCheck.(
      pair (int_range 2 8)
        (small_list (triple (int_range 0 7) (int_range 0 7) (int_range 0 9))))
    (fun (n, raw_arcs) ->
      let arcs =
        List.filter_map
          (fun (u, v, c) ->
            if u < n && v < n && u <> v then Some (u, v, c) else None)
          raw_arcs
      in
      let src = 0 and sink = n - 1 in
      let net = Maxflow.create n in
      let ids = List.map (fun (u, v, c) -> (Maxflow.add_arc net u v c, u, v)) arcs in
      let cut = Maxflow.min_cut net ~src ~sink in
      if cut.Maxflow.value >= Maxflow.infinity then true
      else begin
        (* capacity across the cut equals flow value *)
        let cap_sum =
          List.fold_left
            (fun acc (_, _, id) ->
              let _, _, c = Maxflow.arc_info net id in
              acc + c)
            0 cut.Maxflow.arcs
        in
        let cut_ids = List.map (fun (_, _, id) -> id) cut.Maxflow.arcs in
        (* removing cut arcs disconnects *)
        let g = Digraph.create n in
        List.iter
          (fun (id, u, v) ->
            if not (List.mem id cut_ids) then Digraph.add_edge g u v)
          ids;
        let reach = Digraph.reachable g [ src ] in
        cap_sum = cut.Maxflow.value && not reach.(sink)
      end)

(* The two max-flow algorithms must agree. *)
module Push = Gmt_graphalg.Maxflow_push

let test_push_relabel_simple () =
  let net = Push.create 4 in
  ignore (Push.add_arc net 0 1 3);
  ignore (Push.add_arc net 0 2 2);
  ignore (Push.add_arc net 1 3 2);
  ignore (Push.add_arc net 2 3 3);
  Alcotest.(check int) "max flow" 4 (Push.max_flow net ~src:0 ~sink:3)

let test_push_relabel_min_cut () =
  let net = Push.create 3 in
  ignore (Push.add_arc net 0 1 10);
  let bottleneck = Push.add_arc net 1 2 1 in
  let cut = Push.min_cut net ~src:0 ~sink:2 in
  Alcotest.(check int) "value" 1 cut.Push.value;
  Alcotest.(check (list int)) "cut arc" [ bottleneck ]
    (List.map (fun (_, _, id) -> id) cut.Push.arcs)

let prop_push_equals_edmonds_karp =
  QCheck.Test.make ~count:300
    ~name:"preflow-push flow value = Edmonds-Karp flow value"
    QCheck.(
      pair (int_range 2 9)
        (small_list (triple (int_range 0 8) (int_range 0 8) (int_range 0 12))))
    (fun (n, raw_arcs) ->
      let arcs =
        List.filter_map
          (fun (u, v, c) ->
            if u < n && v < n && u <> v then Some (u, v, c) else None)
          raw_arcs
      in
      let src = 0 and sink = n - 1 in
      let ek = Maxflow.create n in
      let pr = Push.create n in
      List.iter
        (fun (u, v, c) ->
          ignore (Maxflow.add_arc ek u v c);
          ignore (Push.add_arc pr u v c))
        arcs;
      Maxflow.max_flow ek ~src ~sink = Push.max_flow pr ~src ~sink)

let prop_push_cut_disconnects =
  QCheck.Test.make ~count:200 ~name:"preflow-push min-cut disconnects"
    QCheck.(
      pair (int_range 2 8)
        (small_list (triple (int_range 0 7) (int_range 0 7) (int_range 0 9))))
    (fun (n, raw_arcs) ->
      let arcs =
        List.filter_map
          (fun (u, v, c) ->
            if u < n && v < n && u <> v then Some (u, v, c) else None)
          raw_arcs
      in
      let src = 0 and sink = n - 1 in
      let net = Push.create n in
      let ids = List.map (fun (u, v, c) -> (Push.add_arc net u v c, u, v)) arcs in
      let cut = Push.min_cut net ~src ~sink in
      let cut_ids = List.map (fun (_, _, id) -> id) cut.Push.arcs in
      let g = Digraph.create n in
      List.iter
        (fun (id, u, v) ->
          if not (List.mem id cut_ids) then Digraph.add_edge g u v)
        ids;
      not (Digraph.reachable g [ src ]).(sink))

let prop_scc_condensation_acyclic =
  QCheck.Test.make ~count:200 ~name:"SCC condensation is acyclic"
    QCheck.(
      pair (int_range 1 10)
        (small_list (pair (int_range 0 9) (int_range 0 9))))
    (fun (n, raw) ->
      let g = Digraph.create n in
      List.iter (fun (u, v) -> if u < n && v < n then Digraph.add_edge g u v) raw;
      let dag, _ = Scc.condense g in
      Topo.is_acyclic dag)

let tests =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basic;
    Alcotest.test_case "digraph dedup" `Quick test_digraph_dedup;
    Alcotest.test_case "digraph transpose" `Quick test_digraph_transpose;
    Alcotest.test_case "digraph reachable" `Quick test_digraph_reachable;
    Alcotest.test_case "digraph bounds" `Quick test_digraph_bounds;
    Alcotest.test_case "scc cycle" `Quick test_scc_simple_cycle;
    Alcotest.test_case "scc topo numbering" `Quick test_scc_topological_numbering;
    Alcotest.test_case "scc condense" `Quick test_scc_condense_acyclic;
    Alcotest.test_case "scc self loop" `Quick test_scc_self_loop;
    Alcotest.test_case "topo order" `Quick test_topo_order;
    Alcotest.test_case "topo cycle" `Quick test_topo_cycle;
    Alcotest.test_case "dom diamond" `Quick test_dom_diamond;
    Alcotest.test_case "dom loop" `Quick test_dom_loop;
    Alcotest.test_case "dom unreachable" `Quick test_dom_unreachable;
    Alcotest.test_case "dom children" `Quick test_dom_children;
    Alcotest.test_case "maxflow simple" `Quick test_maxflow_simple;
    Alcotest.test_case "maxflow bottleneck" `Quick test_maxflow_bottleneck;
    Alcotest.test_case "maxflow disconnected" `Quick test_maxflow_disconnected;
    Alcotest.test_case "maxflow infinite" `Quick test_maxflow_infinite;
    Alcotest.test_case "maxflow duplicate arcs" `Quick
      test_maxflow_duplicate_accumulates;
    Alcotest.test_case "mincut arcs" `Quick test_mincut_arcs;
    Alcotest.test_case "mincut zero-cap crossing" `Quick
      test_mincut_includes_zero_cap;
    Alcotest.test_case "multicut shared" `Quick test_multicut_two_pairs_share;
    Alcotest.test_case "multicut disjoint" `Quick test_multicut_disjoint_pairs;
    Alcotest.test_case "multicut validates" `Quick test_multicut_validates;
    Alcotest.test_case "push-relabel simple" `Quick test_push_relabel_simple;
    Alcotest.test_case "push-relabel min-cut" `Quick test_push_relabel_min_cut;
    QCheck_alcotest.to_alcotest prop_mincut_disconnects;
    QCheck_alcotest.to_alcotest prop_push_equals_edmonds_karp;
    QCheck_alcotest.to_alcotest prop_push_cut_disconnects;
    QCheck_alcotest.to_alcotest prop_scc_condensation_acyclic;
  ]
