(** GREMIO partitioner (Ottoni & August, MICRO 2007).

    GREMIO performs global multi-threaded scheduling hierarchically over
    the program's control structure, and — unlike DSWP — permits cyclic
    inter-thread dependences. This implementation schedules program-order
    sequences of {e units} (single instructions, or whole loops treated
    atomically) onto threads with a communication-aware greedy balancer,
    and expands a loop unit into its body only when the expanded schedule's
    estimated makespan (computation plus communication instructions)
    actually improves — mirroring GREMIO's ready-time-estimate-driven
    choice between keeping a loop whole and splitting its body. *)

val partition :
  ?n_threads:int ->
  Gmt_pdg.Pdg.t ->
  Gmt_analysis.Profile.t ->
  Partition.t
