(** Multi-threaded programs: the output of MTCG.

    Each thread is an ordinary {!Func.t}; threads communicate over the
    synchronization-array queues referenced by their produce/consume
    instructions. Queue ids are global to the program. *)

type t = {
  name : string;
  threads : Func.t array;
  n_queues : int;
}

val make : name:string -> threads:Func.t array -> n_queues:int -> t
val n_threads : t -> int

(** Total static instruction count across threads. *)
val n_instrs : t -> int
