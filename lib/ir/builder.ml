type blk = { mutable rev_body : Instr.t list; mutable closed : bool }

type t = {
  name : string;
  mutable n_regs : int;
  mutable next_id : int;
  mutable blocks : blk array;
  mutable n_blocks : int;
  mutable entry : Instr.label option;
  region_tbl : (string, Instr.region) Hashtbl.t;
  mutable rev_regions : string list;
  mutable n_regions : int;
}

let create ~name () =
  {
    name;
    n_regs = 0;
    next_id = 0;
    blocks = Array.make 8 { rev_body = []; closed = false };
    n_blocks = 0;
    entry = None;
    region_tbl = Hashtbl.create 8;
    rev_regions = [];
    n_regions = 0;
  }

let reg b =
  let r = Reg.of_int b.n_regs in
  b.n_regs <- b.n_regs + 1;
  r

let regs b n = List.init n (fun _ -> reg b)

let region b name =
  match Hashtbl.find_opt b.region_tbl name with
  | Some r -> r
  | None ->
    let r = b.n_regions in
    Hashtbl.add b.region_tbl name r;
    b.rev_regions <- name :: b.rev_regions;
    b.n_regions <- r + 1;
    r

let block b =
  if b.n_blocks = Array.length b.blocks then begin
    let bigger = Array.make (2 * b.n_blocks) b.blocks.(0) in
    Array.blit b.blocks 0 bigger 0 b.n_blocks;
    b.blocks <- bigger
  end;
  let l = b.n_blocks in
  b.blocks.(l) <- { rev_body = []; closed = false };
  b.n_blocks <- l + 1;
  if b.entry = None then b.entry <- Some l;
  l

let set_entry b l =
  if l < 0 || l >= b.n_blocks then invalid_arg "Builder.set_entry";
  b.entry <- Some l

let get_blk b l =
  if l < 0 || l >= b.n_blocks then invalid_arg "Builder: bad label";
  b.blocks.(l)

let fresh_id b =
  let id = b.next_id in
  b.next_id <- id + 1;
  id

let append b l ~id op ~terminating =
  let blk = get_blk b l in
  if blk.closed then invalid_arg "Builder: block already terminated";
  let i = Instr.make ~id op in
  if Instr.is_terminator i <> terminating then
    invalid_arg
      (if terminating then "Builder.terminate: op is not a terminator"
       else "Builder.add: op is a terminator");
  blk.rev_body <- i :: blk.rev_body;
  if terminating then blk.closed <- true;
  if id >= b.next_id then b.next_id <- id + 1;
  i

let add b l op = append b l ~id:(fresh_id b) op ~terminating:false
let add_with_id b l ~id op = append b l ~id op ~terminating:false
let terminate b l op = append b l ~id:(fresh_id b) op ~terminating:true
let terminate_with_id b l ~id op = append b l ~id op ~terminating:true

let next_id b = b.next_id
let set_next_id b id = b.next_id <- max b.next_id id

let finish b ~live_in ~live_out =
  let entry =
    match b.entry with
    | Some e -> e
    | None -> invalid_arg "Builder.finish: no blocks"
  in
  let blocks =
    Array.init b.n_blocks (fun l ->
        let blk = b.blocks.(l) in
        if not blk.closed then
          invalid_arg
            (Printf.sprintf "Builder.finish: block B%d not terminated" l);
        { Cfg.label = l; body = List.rev blk.rev_body })
  in
  let cfg = Cfg.make ~entry blocks in
  Func.make ~name:b.name ~cfg ~n_regs:b.n_regs
    ~regions:(Array.of_list (List.rev b.rev_regions))
    ~live_in ~live_out
