open Gmt_ir
module Pdg = Gmt_pdg.Pdg
module Partition = Gmt_sched.Partition
module Controldep = Gmt_analysis.Controldep
module Dom = Gmt_graphalg.Dom
module Iset = Relevant.Iset

type plan = { comms : Comm.t list }

type origin = { comm_of_instr : (int, int) Hashtbl.t array }

let comm_of origin ~thread id =
  if thread < 0 || thread >= Array.length origin.comm_of_instr then None
  else Hashtbl.find_opt origin.comm_of_instr.(thread) id

let n_queues plan = List.length plan.comms

(* ------------------------------------------------------------------ *)
(* Baseline plan: communicate every dependence at its source point.    *)
(* ------------------------------------------------------------------ *)

let baseline_plan pdg partition =
  let f = Pdg.func pdg in
  let cfg = f.Func.cfg in
  let specs = ref [] in
  let seen = Hashtbl.create 64 in
  let add key spec =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      specs := spec :: !specs
    end
  in
  (* Data dependences, communicated at the source instruction's point. *)
  List.iter
    (fun (a : Pdg.arc) ->
      match
        (Partition.thread_of_opt partition a.src,
         Partition.thread_of_opt partition a.dst)
      with
      | Some ts, Some tt when ts <> tt -> (
        match a.kind with
        | Pdg.Reg r ->
          (* One transfer per (definition, register, target thread). *)
          add (`R (a.src, Reg.to_int r, tt))
            (Comm.Data r, ts, tt, Comm.After a.src)
        | Pdg.Mem _ ->
          (* One synchronization token per (source access, target). *)
          add (`M (a.src, tt)) (Comm.Sync, ts, tt, Comm.After a.src)
        | Pdg.Ctrl | Pdg.Ctrl_trans -> ())
      | _ -> ())
    (Pdg.arcs pdg);
  (* Control dependences: every branch a thread must replicate but does
     not own has its operand sent right before the branch executes (lines
     17-20 of Algorithm 1). Relevance already closes over chains of
     branches and over the controllers of the data communication points
     above, which is exactly the set of transitive control dependences to
     implement. *)
  let data_comms = Comm.number (List.rev !specs) in
  let cd = Controldep.compute f in
  let rel = Relevant.compute f cd partition data_comms in
  for tt = 0 to Partition.n_threads partition - 1 do
    Relevant.Iset.iter
      (fun br_id ->
        let br = Cfg.find_instr cfg br_id in
        let ts =
          match Partition.thread_of_opt partition br_id with
          | Some t -> t
          | None -> invalid_arg "Mtcg.baseline_plan: unassigned branch"
        in
        if ts <> tt then
          match Instr.uses br with
          | [ c ] -> add (`C (br_id, tt)) (Comm.Data c, ts, tt, Comm.Before br_id)
          | _ -> ())
      (Relevant.branches rel tt)
  done;
  { comms = Comm.number (List.rev !specs) }

(* ------------------------------------------------------------------ *)
(* The weaver.                                                         *)
(* ------------------------------------------------------------------ *)

type edge = Instr.label * Instr.label

let generate_with_origin ?queues pdg partition plan =
  let queues =
    match queues with
    | Some q -> q
    | None -> Queue_alloc.identity plan.comms
  in
  let f = Pdg.func pdg in
  let cfg = f.Func.cfg in
  let cd = Controldep.compute f in
  let pdom = Controldep.postdom cd in
  let virtual_exit = Cfg.n_blocks cfg in
  let rel = Relevant.compute f cd partition plan.comms in
  let n_threads = Partition.n_threads partition in
  (* Group communications by point, ordered deterministically by index so
     both endpoint threads weave them identically. *)
  let by_before : (int, Comm.t list) Hashtbl.t = Hashtbl.create 32 in
  let by_after : (int, Comm.t list) Hashtbl.t = Hashtbl.create 32 in
  let by_entry : (Instr.label, Comm.t list) Hashtbl.t = Hashtbl.create 32 in
  let by_edge : (edge, Comm.t list) Hashtbl.t = Hashtbl.create 32 in
  let push tbl k (c : Comm.t) =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
    Hashtbl.replace tbl k
      (List.sort (fun (a : Comm.t) b -> compare a.index b.index) (c :: cur))
  in
  List.iter
    (fun (c : Comm.t) ->
      match c.point with
      | Comm.Before id -> push by_before id c
      | Comm.After id -> push by_after id c
      | Comm.Block_entry l -> push by_entry l c
      | Comm.On_edge (a, b) -> push by_edge (a, b) c)
    plan.comms;
  let comms_at tbl key th =
    Option.value ~default:[] (Hashtbl.find_opt tbl key)
    |> List.filter (fun (c : Comm.t) -> c.src = th || c.dst = th)
  in
  let build_thread th =
    let relevant = Relevant.blocks rel th in
    let origin_tbl : (int, int) Hashtbl.t = Hashtbl.create 32 in
    let b = Builder.create ~name:(Printf.sprintf "%s.t%d" f.name th) () in
    (* Reuse the original register space and regions. *)
    let rec mk_regs k = if k < f.n_regs then (ignore (Builder.reg b); mk_regs (k + 1)) in
    mk_regs 0;
    Array.iter (fun nm -> ignore (Builder.region b nm)) f.regions;
    Builder.set_next_id b (Cfg.max_instr_id cfg);
    (* Allocate new labels: one per relevant block, one per comm edge of
       this thread, and an exit stub. *)
    let new_label = Hashtbl.create 16 in
    Iset.iter (fun l -> Hashtbl.replace new_label l (Builder.block b)) relevant;
    let edge_label = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (a, dstl) cs ->
        if List.exists (fun (c : Comm.t) -> c.src = th || c.dst = th) cs then
          Hashtbl.replace edge_label (a, dstl) (Builder.block b))
      by_edge;
    let exit_stub = Builder.block b in
    (* Nearest relevant post-dominator. *)
    let rec redirect l =
      if l = virtual_exit then exit_stub
      else if Iset.mem l relevant then Hashtbl.find new_label l
      else
        match Dom.idom pdom l with
        | Some p -> redirect p
        | None -> exit_stub
    in
    (* Emit the communication instructions of [cs] that involve thread
       [th], into block [lbl]. *)
    let emit_comms lbl cs =
      List.iter
        (fun (c : Comm.t) ->
          let q = queues.Queue_alloc.queue_of c.index in
          if c.src = th then begin
            let i =
              Builder.add b lbl
                (match c.payload with
                | Comm.Data r -> Instr.Produce (q, r)
                | Comm.Sync -> Instr.Produce_sync q)
            in
            Hashtbl.replace origin_tbl i.Instr.id c.index
          end
          else if c.dst = th then begin
            let i =
              Builder.add b lbl
                (match c.payload with
                | Comm.Data r -> Instr.Consume (r, q)
                | Comm.Sync -> Instr.Consume_sync q)
            in
            Hashtbl.replace origin_tbl i.Instr.id c.index
          end)
        cs
    in
    (* Resolve the target of original edge (l, s) for this thread. *)
    let edge_target l s =
      match Hashtbl.find_opt edge_label (l, s) with
      | Some split -> split
      | None -> redirect s
    in
    (* Weave each relevant block. *)
    Iset.iter
      (fun l ->
        let lbl = Hashtbl.find new_label l in
        emit_comms lbl (comms_at by_entry l th);
        let body = Cfg.body cfg l in
        List.iter
          (fun (i : Instr.t) ->
            if Instr.is_terminator i then begin
              emit_comms lbl (comms_at by_before i.id th);
              match i.op with
              | Instr.Return ->
                ignore (Builder.terminate_with_id b lbl ~id:i.id Instr.Return)
              | Instr.Jump s ->
                ignore
                  (Builder.terminate_with_id b lbl ~id:i.id
                     (Instr.Jump (edge_target l s)))
              | Instr.Branch (c, s1, s2) ->
                let owned =
                  match Partition.thread_of_opt partition i.id with
                  | Some t -> t = th
                  | None -> false
                in
                if
                  owned
                  || Relevant.is_relevant_branch rel ~thread:th ~branch_id:i.id
                then
                  ignore
                    (Builder.terminate_with_id b lbl ~id:i.id
                       (Instr.Branch (c, edge_target l s1, edge_target l s2)))
                else begin
                  let r1 = redirect s1 and r2 = redirect s2 in
                  if r1 <> r2 then
                    failwith
                      (Printf.sprintf
                         "Mtcg.generate: irrelevant branch i%d of %s has \
                          diverging relevant successors for thread %d"
                         i.id f.name th);
                  ignore (Builder.terminate b lbl (Instr.Jump r1))
                end
              | _ -> assert false
            end
            else begin
              emit_comms lbl (comms_at by_before i.id th);
              (match Partition.thread_of_opt partition i.id with
              | Some t when t = th ->
                ignore (Builder.add_with_id b lbl ~id:i.id i.op)
              | _ -> ());
              emit_comms lbl (comms_at by_after i.id th)
            end)
          body)
      relevant;
    (* Edge-split blocks. *)
    Hashtbl.iter
      (fun (a, s) split ->
        emit_comms split (comms_at by_edge (a, s) th);
        ignore (Builder.terminate b split (Instr.Jump (redirect s))))
      edge_label;
    (* Exit stub. *)
    ignore (Builder.terminate b exit_stub Instr.Return);
    (* Entry point. *)
    Builder.set_entry b (redirect (Cfg.entry cfg));
    (Builder.finish b ~live_in:f.live_in ~live_out:f.live_out, origin_tbl)
  in
  let results =
    Array.init n_threads (fun t ->
        Gmt_obs.Obs.span ~args:[ ("thread", Gmt_obs.Obs.I t) ] "mtcg.thread"
          (fun () -> build_thread t))
  in
  let threads = Array.map fst results in
  let origin = { comm_of_instr = Array.map snd results } in
  ( Mtprog.make ~name:f.name ~threads ~n_queues:queues.Queue_alloc.n_queues,
    origin )

let generate ?queues pdg partition plan =
  fst (generate_with_origin ?queues pdg partition plan)

let run pdg partition = generate pdg partition (baseline_plan pdg partition)
