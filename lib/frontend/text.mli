(** The textual GMT-IR v1 frontend (library [gmt_frontend]).

    A hand-written lexer and recursive-descent parser for the format
    {!Gmt_ir.Printer} emits (full grammar in docs/FORMAT.md): a [func]
    section producing a {!Gmt_ir.Func.t}, plus optional workload
    directives ([workload], [suite], [function], [exec_pct],
    [description], [mem_size]) and [input train] / [input ref] sections
    mapping onto {!Gmt_workloads.Workload.input}.

    The parser and {!print} are inverse: [parse (print w)] succeeds and
    is structurally equal to [w] ([parse_func (print_func f)] likewise
    for bare functions), where structural equality treats the
    live-in/live-out lists as sets — the canonical printed order is
    sorted and de-duplicated.

    Every syntax or consistency error carries a precise [file:line:col]
    position and, for unexpected tokens, the set of tokens that would
    have been accepted. *)

open Gmt_ir
module Workload = Gmt_workloads.Workload

type error = { file : string; line : int; col : int; msg : string }

(** ["file:line:col: msg"]. *)
val render_error : error -> string

(** Parse a bare [func] section. [file] names the source in diagnostics
    (default ["<string>"]). *)
val parse_func : ?file:string -> string -> (Func.t, error) result

(** Parse a complete [.gmt] document: [gmt-ir v1] header, directives,
    one [func], optional inputs. Absent directives default to: workload
    name = function name, suite ["user"], exec_pct [0], empty
    description, mem_size [65536], empty inputs. *)
val parse : ?file:string -> string -> (Workload.t, error) result

(** Like {!parse}, but also return the instruction-id -> (line, col)
    position map the parser collected; [gmtc lint] anchors findings with
    it. Positions are 1-based, as in diagnostics. *)
val parse_pos :
  ?file:string ->
  string ->
  (Workload.t * (int -> (int * int) option), error) result

(** [load path] reads [path] (or stdin when [path] is ["-"]) and parses
    it. I/O failures are reported as an [error] at [path:0:0]. *)
val load : string -> (Workload.t, error) result

(** {!load} with the position map, as in {!parse_pos}. *)
val load_pos :
  string -> (Workload.t * (int -> (int * int) option), error) result

(** Canonical serialization of a workload; {!parse} inverts it. The
    [func] section is printed with {!Gmt_ir.Printer.func_to_string}. *)
val print : Workload.t -> string

(** [= Gmt_ir.Printer.func_to_string]. *)
val print_func : Func.t -> string

(** Structural equality: name, register count, regions, entry, every
    block body (ids and operations), and the live-in/live-out {e sets}. *)
val func_equal : Func.t -> Func.t -> bool

(** {!func_equal} on the function plus equality of every workload field
    (name, suite, function name, exec%, description, mem_size, exact
    train/ref input lists). *)
val workload_equal : Workload.t -> Workload.t -> bool
