open Gmt_ir

(* One rewrite round; returns (f', changed). *)
let one_pass (f : Func.t) =
  let cfg = f.Func.cfg in
  let n = Cfg.n_blocks cfg in
  let changed = ref false in
  (* 1. Jump threading. trivial.(l) = Some t when block l is exactly
     [Jump t]. Chains are followed with a cycle guard. *)
  let trivial =
    Array.init n (fun l ->
        match Cfg.body cfg l with
        | [ { Instr.op = Instr.Jump t; _ } ] -> Some t
        | _ -> None)
  in
  let resolve l =
    let rec go l steps =
      if steps > n then l
      else match trivial.(l) with Some t when t <> l -> go t (steps + 1) | _ -> l
    in
    go l 0
  in
  let retarget (i : Instr.t) =
    match Instr.targets i with
    | [] -> i
    | ts ->
      let ts' = List.map resolve ts in
      if ts' <> ts then begin
        changed := true;
        Instr.with_targets i ts'
      end
      else i
  in
  let bodies =
    Array.init n (fun l ->
        let body = Cfg.body cfg l in
        List.map retarget body)
  in
  let entry = resolve (Cfg.entry cfg) in
  if entry <> Cfg.entry cfg then changed := true;
  (* 2. Straight-line merging on the threaded bodies. *)
  let preds = Array.make n [] in
  Array.iteri
    (fun l body ->
      match List.rev body with
      | last :: _ ->
        List.iter (fun t -> preds.(t) <- l :: preds.(t)) (Instr.targets last)
      | [] -> ())
    bodies;
  let merged_away = Array.make n false in
  let rec merge l =
    match List.rev bodies.(l) with
    | { Instr.op = Instr.Jump t; _ } :: rev_rest
      when t <> l && t <> entry && preds.(t) = [ l ] && not merged_away.(t) ->
      changed := true;
      merged_away.(t) <- true;
      bodies.(l) <- List.rev rev_rest @ bodies.(t);
      bodies.(t) <- [];
      merge l
    | _ -> ()
  in
  for l = 0 to n - 1 do
    if not merged_away.(l) then merge l
  done;
  (* 3. Drop unreachable blocks and renumber. *)
  let g = Gmt_graphalg.Digraph.create n in
  Array.iteri
    (fun l body ->
      if not merged_away.(l) then
        match List.rev body with
        | last :: _ ->
          List.iter
            (fun t -> Gmt_graphalg.Digraph.add_edge g l t)
            (Instr.targets last)
        | [] -> ())
    bodies;
  let reach = Gmt_graphalg.Digraph.reachable g [ entry ] in
  let keep = ref [] in
  for l = n - 1 downto 0 do
    if reach.(l) && not merged_away.(l) then keep := l :: !keep
  done;
  if List.length !keep <> n then changed := true;
  let remap = Hashtbl.create n in
  List.iteri (fun nl ol -> Hashtbl.replace remap ol nl) !keep;
  let blocks =
    Array.of_list
      (List.mapi
         (fun nl ol ->
           let body =
             List.map
               (fun (i : Instr.t) ->
                 match Instr.targets i with
                 | [] -> i
                 | ts ->
                   Instr.with_targets i
                     (List.map (fun t -> Hashtbl.find remap t) ts))
               bodies.(ol)
           in
           { Cfg.label = nl; body })
         !keep)
  in
  let cfg' = Cfg.make ~entry:(Hashtbl.find remap entry) blocks in
  ({ f with Func.cfg = cfg' }, !changed)

let run f =
  let rec go f k =
    if k = 0 then f
    else
      let f', changed = one_pass f in
      if changed then go f' (k - 1) else f'
  in
  go f 20
