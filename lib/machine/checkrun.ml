open Gmt_ir

type trap =
  | Uninit_read of { iid : int; reg : Reg.t }
  | Oob of { iid : int; addr : int }
  | Comm of { iid : int }

type outcome =
  | Finished
  | Trapped of trap
  | Out_of_fuel

type t = {
  outcome : outcome;
  addr_trace : (int * int list) list;
  dyn : int;
}

let trap_to_string = function
  | Uninit_read { iid; reg } ->
    Printf.sprintf "i%d: read of uninitialized %s" iid (Reg.to_string reg)
  | Oob { iid; addr } ->
    Printf.sprintf "i%d: out-of-bounds address %d" iid addr
  | Comm { iid } -> Printf.sprintf "i%d: communication instruction" iid

let is_pow2 n = n > 0 && n land (n - 1) = 0

exception Trap of trap

let run ?(fuel = 50_000_000) ?(init_regs = []) ?(init_mem = [])
    (f : Func.t) ~mem_size =
  if not (is_pow2 mem_size) then invalid_arg "Checkrun.run: mem_size not 2^k";
  let mask = mem_size - 1 in
  let memory = Array.make mem_size 0 in
  List.iter (fun (a, v) -> memory.(a land mask) <- v) init_mem;
  let nregs = max 1 f.n_regs in
  let regs = Array.make nregs 0 in
  let defined = Array.make nregs false in
  List.iter (fun r -> defined.(Reg.to_int r) <- true) f.live_in;
  List.iter
    (fun (r, v) ->
      regs.(Reg.to_int r) <- v;
      defined.(Reg.to_int r) <- true)
    init_regs;
  let addrs : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let record iid a =
    let tbl =
      match Hashtbl.find_opt addrs iid with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.add addrs iid t;
        t
    in
    Hashtbl.replace tbl a ()
  in
  let cfg = f.cfg in
  let dyn = ref 0 in
  let fuel_left = ref fuel in
  let get iid r =
    if not defined.(Reg.to_int r) then raise (Trap (Uninit_read { iid; reg = r }));
    regs.(Reg.to_int r)
  in
  let set r v =
    regs.(Reg.to_int r) <- v;
    defined.(Reg.to_int r) <- true
  in
  (* Effective address with the trace and bounds check: the pre-mask sum is
     what the abstract domains reason about, so that is what we record and
     test — the masked address always lands in range. *)
  let addr iid base off =
    let a = get iid base + off in
    record iid a;
    if a < 0 || a >= mem_size then raise (Trap (Oob { iid; addr = a }));
    a
  in
  let outcome = ref Finished in
  (try
     let finished = ref false in
     let block = ref (Cfg.entry cfg) in
     while not !finished do
       let body = Cfg.body cfg !block in
       let next = ref None in
       List.iter
         (fun (i : Instr.t) ->
           if !next = None && not !finished then begin
             decr fuel_left;
             if !fuel_left <= 0 then raise Exit;
             incr dyn;
             match i.op with
             | Const (d, k) -> set d k
             | Copy (d, s) -> set d (get i.id s)
             | Unop (u, d, s) -> set d (Instr.eval_unop u (get i.id s))
             | Binop (b, d, x, y) ->
               let vx = get i.id x in
               let vy = get i.id y in
               set d (Instr.eval_binop b vx vy)
             | Load (_, d, base, off) -> set d memory.(addr i.id base off)
             | Store (_, base, off, s) ->
               let a = addr i.id base off in
               memory.(a) <- get i.id s
             | Jump l -> next := Some l
             | Branch (c, l1, l2) ->
               next := Some (if get i.id c <> 0 then l1 else l2)
             | Return -> finished := true
             | Produce _ | Consume _ | Produce_sync _ | Consume_sync _ ->
               raise (Trap (Comm { iid = i.id }))
             | Nop -> ()
           end)
         body;
       match !next with
       | Some l -> block := l
       | None ->
         if not !finished then
           failwith "Checkrun.run: block fell through without terminator"
     done
   with
  | Exit -> outcome := Out_of_fuel
  | Trap tr -> outcome := Trapped tr);
  let addr_trace =
    Hashtbl.fold
      (fun iid tbl acc ->
        let l = Hashtbl.fold (fun a () l -> a :: l) tbl [] in
        (iid, List.sort compare l) :: acc)
      addrs []
    |> List.sort compare
  in
  { outcome = !outcome; addr_trace; dyn = !dyn }
