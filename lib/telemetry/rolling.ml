type kind = Sum | Peak

type t = {
  lock : Mutex.t;
  k : kind;
  slot_s : float;
  values : int array;
  (* Epoch (absolute slot id) that last wrote each ring slot; a stale
     epoch means the slot's value belongs to a window long gone. *)
  epochs : int array;
}

let create ?(slots = 60) ?(slot_s = 1.0) k =
  let slots = max 1 slots in
  {
    lock = Mutex.create ();
    k;
    slot_s = (if slot_s > 0.0 then slot_s else 1.0);
    values = Array.make slots 0;
    epochs = Array.make slots min_int;
  }

let kind t = t.k
let window_s t = float_of_int (Array.length t.values) *. t.slot_s
let slot_id t now = int_of_float (Float.max 0.0 now /. t.slot_s)

let add t ~now v =
  let id = slot_id t now in
  let i = id mod Array.length t.values in
  Mutex.lock t.lock;
  if t.epochs.(i) <> id then begin
    t.epochs.(i) <- id;
    t.values.(i) <- 0
  end;
  (match t.k with
  | Sum -> t.values.(i) <- t.values.(i) + v
  | Peak -> if v > t.values.(i) then t.values.(i) <- v);
  Mutex.unlock t.lock

let total t ~now =
  let id = slot_id t now in
  let n = Array.length t.values in
  Mutex.lock t.lock;
  let acc = ref 0 in
  for i = 0 to n - 1 do
    if id - t.epochs.(i) < n && t.epochs.(i) <= id then
      match t.k with
      | Sum -> acc := !acc + t.values.(i)
      | Peak -> if t.values.(i) > !acc then acc := t.values.(i)
  done;
  Mutex.unlock t.lock;
  !acc
