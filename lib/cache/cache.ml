module Obs = Gmt_obs.Obs
module Json = Gmt_obs.Json
module Events = Gmt_telemetry.Events

type entry = {
  mtp : Gmt_ir.Mtprog.t;
  comm_sites : int;
  verified : bool;
  w_name : string;
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;
}

type slot = { value : entry; mutable tick : int }

type t = {
  lock : Mutex.t;
  mem : (string, slot) Hashtbl.t;
  mem_capacity : int;
  disk : string option;
  mutable clock : int;  (** LRU timestamp source *)
  mutable cold_clock : int;  (** replica timestamp source, always < any clock tick *)
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable on_store : (string -> entry -> unit) option;
}

let header = Printf.sprintf "gmt-cache/%d" Fingerprint.format_version

let create ?(mem_capacity = 128) ?dir () =
  Option.iter Diskio.ensure_dir dir;
  {
    lock = Mutex.create ();
    mem = Hashtbl.create 64;
    mem_capacity = max 1 mem_capacity;
    disk = dir;
    clock = 0;
    cold_clock = 0;
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
    corrupt = 0;
    on_store = None;
  }

let dir t = t.disk

let entry_path t key =
  Option.map (fun d -> Filename.concat d (key ^ ".entry")) t.disk

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t slot =
  t.clock <- t.clock + 1;
  slot.tick <- t.clock

(* Drop least-recently-used slots until the table fits. Capacity is
   small, so a linear scan per eviction is fine. *)
let enforce_capacity t =
  while Hashtbl.length t.mem > t.mem_capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun k s ->
        match !victim with
        | Some (_, best) when best <= s.tick -> ()
        | _ -> victim := Some (k, s.tick))
      t.mem;
    match !victim with
    | None -> ()
    | Some (k, _) ->
      Hashtbl.remove t.mem k;
      t.evictions <- t.evictions + 1;
      Obs.Metrics.add "cache.evict" 1;
      (* Debug so a thrashing cache can be rate-limited by sampling. *)
      Events.emit ~severity:Events.Debug ~kind:"cache.evict"
        [ ("key", Json.Str k) ]
  done

let encode e =
  let payload = Marshal.to_string e [] in
  String.concat "\n" [ header; Digest.to_hex (Digest.string payload); payload ]

(* [Ok e] on a well-formed entry; [Error reason] on a stale version,
   damaged header, checksum mismatch, or anything Marshal chokes on. The
   checksum is verified before unmarshalling, so Marshal only ever sees
   bytes the writer produced. *)
let decode s =
  match String.index_opt s '\n' with
  | None -> Error "no header"
  | Some i -> (
    let got = String.sub s 0 i in
    if got <> header then Error (Printf.sprintf "version %S, want %S" got header)
    else
      match String.index_from_opt s (i + 1) '\n' with
      | None -> Error "no checksum"
      | Some j ->
        let sum = String.sub s (i + 1) (j - i - 1) in
        let payload = String.sub s (j + 1) (String.length s - j - 1) in
        if Digest.to_hex (Digest.string payload) <> sum then
          Error "checksum mismatch"
        else (
          match (Marshal.from_string payload 0 : entry) with
          | e -> Ok e
          | exception _ -> Error "unmarshal failed"))

(* Caller holds the lock. *)
let evict_corrupt ?(reason = "") t key =
  t.corrupt <- t.corrupt + 1;
  t.evictions <- t.evictions + 1;
  Obs.Metrics.add "cache.corrupt" 1;
  Obs.Metrics.add "cache.evict" 1;
  Events.emit ~severity:Events.Warn ~kind:"cache.corrupt"
    [ ("key", Json.Str key); ("reason", Json.Str reason) ];
  match entry_path t key with
  | None -> ()
  | Some p -> ( try Sys.remove p with Sys_error _ -> ())

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.mem key with
  | Some slot ->
    touch t slot;
    t.hits <- t.hits + 1;
    Obs.Metrics.add "cache.hit" 1;
    Obs.Metrics.add "cache.hit.mem" 1;
    Some slot.value
  | None -> (
    let miss () =
      t.misses <- t.misses + 1;
      Obs.Metrics.add "cache.miss" 1;
      None
    in
    match entry_path t key with
    | None -> miss ()
    | Some path -> (
      match Diskio.read_file path with
      | None -> miss ()
      | Some raw -> (
        match decode raw with
        | Error reason ->
          evict_corrupt ~reason t key;
          miss ()
        | Ok e ->
          let slot = { value = e; tick = 0 } in
          touch t slot;
          Hashtbl.replace t.mem key slot;
          enforce_capacity t;
          t.hits <- t.hits + 1;
          Obs.Metrics.add "cache.hit" 1;
          Obs.Metrics.add "cache.hit.disk" 1;
          Some e)))

let store t key e =
  (locked t @@ fun () ->
   let slot = { value = e; tick = 0 } in
   touch t slot;
   Hashtbl.replace t.mem key slot;
   enforce_capacity t;
   t.stores <- t.stores + 1;
   Obs.Metrics.add "cache.store" 1;
   match entry_path t key with
   | None -> ()
   | Some path -> Diskio.write_atomic path (encode e));
  (* Hook runs outside the lock: the farm's replication pusher enqueues
     from here, and nothing it might do (including touching this cache)
     may deadlock against the store. *)
  match t.on_store with None -> () | Some f -> f key e

let set_on_store t f = t.on_store <- f

(* Replicas enter colder than every owned entry (ticks strictly below
   any [touch] has issued), so LRU pressure always evicts a replica
   before a key this shard actually served. A later [find] promotes the
   replica with a real tick — at that point it has earned residency. *)
let ingest t key e =
  locked t @@ fun () ->
  if Hashtbl.mem t.mem key then false
  else begin
    t.cold_clock <- t.cold_clock - 1;
    Hashtbl.replace t.mem key { value = e; tick = t.cold_clock };
    enforce_capacity t;
    Obs.Metrics.add "cache.ingest" 1;
    true
  end

let encode_entry = encode
let decode_entry = decode

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    evictions = t.evictions;
    corrupt = t.corrupt;
  }
