(* IR substrate: instructions, builder, CFG structure, validation,
   printing. *)

open Gmt_ir

let test_instr_defs_uses () =
  let i op = Instr.make ~id:0 op in
  let r n = Reg.of_int n in
  Alcotest.(check (list int))
    "binop defs" [ 0 ]
    (List.map Reg.to_int (Instr.defs (i (Instr.Binop (Instr.Add, r 0, r 1, r 2)))));
  Alcotest.(check (list int))
    "binop uses" [ 1; 2 ]
    (List.map Reg.to_int (Instr.uses (i (Instr.Binop (Instr.Add, r 0, r 1, r 2)))));
  Alcotest.(check (list int))
    "same-reg uses dedup" [ 1 ]
    (List.map Reg.to_int (Instr.uses (i (Instr.Binop (Instr.Mul, r 0, r 1, r 1)))));
  Alcotest.(check (list int))
    "store uses" [ 2; 3 ]
    (List.map Reg.to_int (Instr.uses (i (Instr.Store (0, r 2, 4, r 3)))));
  Alcotest.(check (list int))
    "consume defs" [ 5 ]
    (List.map Reg.to_int (Instr.defs (i (Instr.Consume (r 5, 3)))));
  Alcotest.(check bool) "branch is branch" true
    (Instr.is_branch (i (Instr.Branch (r 0, 1, 2))));
  Alcotest.(check bool) "jump structural" true
    (Instr.is_structural (i (Instr.Jump 1)));
  Alcotest.(check bool) "produce comm" true
    (Instr.is_communication (i (Instr.Produce (0, r 1))))

let test_instr_eval () =
  Alcotest.(check int) "add" 7 (Instr.eval_binop Instr.Add 3 4);
  Alcotest.(check int) "div by zero total" 0 (Instr.eval_binop Instr.Div 5 0);
  Alcotest.(check int) "rem by zero total" 0 (Instr.eval_binop Instr.Rem 5 0);
  Alcotest.(check int) "lt true" 1 (Instr.eval_binop Instr.Lt 1 2);
  Alcotest.(check int) "shl wraps at word size" 2
    (Instr.eval_binop Instr.Shl 1 (Sys.int_size + 1));
  Alcotest.(check int) "shr negative amount total" 1
    (Instr.eval_binop Instr.Shr 2 (-1 * (Sys.int_size - 1)));
  Alcotest.(check int) "neg" (-3) (Instr.eval_unop Instr.Neg 3);
  Alcotest.(check int) "fsqrt of negative" 0 (Instr.eval_unop Instr.Fsqrt (-9));
  Alcotest.(check int) "fsqrt" 3 (Instr.eval_unop Instr.Fsqrt 9)

let test_instr_targets () =
  let i = Instr.make ~id:0 (Instr.Branch (Reg.of_int 0, 3, 5)) in
  Alcotest.(check (list int)) "targets" [ 3; 5 ] (Instr.targets i);
  let i' = Instr.with_targets i [ 7; 9 ] in
  Alcotest.(check (list int)) "retargeted" [ 7; 9 ] (Instr.targets i');
  Alcotest.check_raises "arity" (Invalid_argument "Instr.with_targets")
    (fun () -> ignore (Instr.with_targets i [ 1 ]))

let test_builder_basic () =
  let b = Builder.create ~name:"t" () in
  let r0 = Builder.reg b in
  let b0 = Builder.block b in
  let b1 = Builder.block b in
  let i1 = Builder.add b b0 (Instr.Const (r0, 42)) in
  Alcotest.(check int) "first id" 0 i1.Instr.id;
  ignore (Builder.terminate b b0 (Instr.Jump b1));
  ignore (Builder.terminate b b1 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[] in
  Alcotest.(check int) "entry" 0 (Cfg.entry f.Func.cfg);
  Alcotest.(check int) "blocks" 2 (Cfg.n_blocks f.Func.cfg);
  Alcotest.(check int) "instrs" 3 (Cfg.n_instrs f.Func.cfg);
  Validate.check f

let test_builder_rejects_double_terminate () =
  let b = Builder.create ~name:"t" () in
  let b0 = Builder.block b in
  ignore (Builder.terminate b b0 Instr.Return);
  Alcotest.check_raises "closed"
    (Invalid_argument "Builder: block already terminated") (fun () ->
      ignore (Builder.terminate b b0 Instr.Return))

let test_builder_rejects_unterminated () =
  let b = Builder.create ~name:"t" () in
  let b0 = Builder.block b in
  let r0 = Builder.reg b in
  ignore (Builder.add b b0 (Instr.Const (r0, 1)));
  Alcotest.check_raises "unterminated"
    (Invalid_argument "Builder.finish: block B0 not terminated") (fun () ->
      ignore (Builder.finish b ~live_in:[] ~live_out:[]))

let test_builder_mid_block_terminator_rejected () =
  let b = Builder.create ~name:"t" () in
  let b0 = Builder.block b in
  Alcotest.check_raises "terminator via add"
    (Invalid_argument "Builder.add: op is a terminator") (fun () ->
      ignore (Builder.add b b0 Instr.Return))

let test_builder_regions () =
  let b = Builder.create ~name:"t" () in
  let r1 = Builder.region b "heap" in
  let r2 = Builder.region b "stack" in
  let r1' = Builder.region b "heap" in
  Alcotest.(check int) "same name same region" r1 r1';
  Alcotest.(check bool) "distinct" true (r1 <> r2);
  let b0 = Builder.block b in
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[] in
  Alcotest.(check int) "two regions" 2 (Func.n_regions f);
  Alcotest.(check string) "name" "heap" (Func.region_name f r1)

let test_cfg_structure () =
  let fx = Test_util.fig3 () in
  let cfg = fx.Test_util.func.Func.cfg in
  Alcotest.(check (list int)) "succs of entry" [ 1; 2 ] (Cfg.succs cfg 0);
  Alcotest.(check (list int)) "preds of join" [ 0; 1; 3 ]
    (List.sort compare (Cfg.preds cfg 2));
  Alcotest.(check (list int)) "exit blocks" [ 2 ] (Cfg.exit_blocks cfg);
  let l, idx = Cfg.position cfg fx.Test_util.e in
  Alcotest.(check (pair int int)) "position of E" (3, 0) (l, idx);
  let g, exit_node = Cfg.digraph_with_exit cfg in
  Alcotest.(check int) "virtual exit" 4 exit_node;
  Alcotest.(check bool) "return -> exit" true
    (Gmt_graphalg.Digraph.mem_edge g 2 exit_node)

let test_validate_catches_bad_reg () =
  (* Hand-build a CFG mentioning a register beyond n_regs. *)
  let blocks =
    [|
      {
        Cfg.label = 0;
        body =
          [
            Instr.make ~id:0 (Instr.Const (Reg.of_int 9, 1));
            Instr.make ~id:1 Instr.Return;
          ];
      };
    |]
  in
  let cfg = Cfg.make ~entry:0 blocks in
  let f =
    Func.make ~name:"bad" ~cfg ~n_regs:1 ~regions:[||] ~live_in:[] ~live_out:[]
  in
  Alcotest.(check bool) "invalid" false (Validate.is_valid f)

let test_validate_catches_duplicate_ids () =
  let blocks =
    [|
      {
        Cfg.label = 0;
        body =
          [
            Instr.make ~id:0 (Instr.Const (Reg.of_int 0, 1));
            Instr.make ~id:0 (Instr.Const (Reg.of_int 0, 2));
            Instr.make ~id:1 Instr.Return;
          ];
      };
    |]
  in
  let cfg = Cfg.make ~entry:0 blocks in
  let f =
    Func.make ~name:"dup" ~cfg ~n_regs:1 ~regions:[||] ~live_in:[] ~live_out:[]
  in
  Alcotest.(check bool) "invalid" false (Validate.is_valid f)

let test_validate_requires_reachable_return () =
  let blocks =
    [|
      {
        Cfg.label = 0;
        body = [ Instr.make ~id:0 (Instr.Jump 0) ];
      };
      { Cfg.label = 1; body = [ Instr.make ~id:1 Instr.Return ] };
    |]
  in
  let cfg = Cfg.make ~entry:0 blocks in
  let f =
    Func.make ~name:"loop" ~cfg ~n_regs:0 ~regions:[||] ~live_in:[]
      ~live_out:[]
  in
  Alcotest.(check bool) "no reachable return" false (Validate.is_valid f)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_printer_mentions () =
  let fx = Test_util.fig3 () in
  let s = Printer.func_to_string fx.Test_util.func in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " printed") true (contains ~needle:frag s))
    [ "func \"fig3\""; "B0:"; "store"; "branch"; "return"; "entry: B0";
      "regions:" ]

(* The printer is the canonical serializer of the textual format: names
   are quoted with escapes and live lists come out sorted/de-duplicated,
   so printing is deterministic in the live-set order. *)
let test_printer_canonical () =
  let mk live_in =
    let b = Builder.create ~name:"we ird\"name" () in
    let r0 = Builder.reg b in
    let r1 = Builder.reg b in
    let m = Builder.region b "sp ace\tand\"quote\\" in
    let blk = Builder.block b in
    ignore (Builder.add b blk (Instr.Store (m, r0, 0, r1)));
    ignore (Builder.terminate b blk Instr.Return);
    Builder.finish b ~live_in ~live_out:[]
  in
  let r0 = Reg.of_int 0 and r1 = Reg.of_int 1 in
  let a = Printer.func_to_string (mk [ r0; r1 ]) in
  let b = Printer.func_to_string (mk [ r1; r0; r1 ]) in
  Alcotest.(check string) "live order canonicalized" a b;
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " printed") true (contains ~needle:frag a))
    [
      "func \"we ird\\\"name\"";
      "regions: [m0 = \"sp ace\\tand\\\"quote\\\\\"]";
      "live_in: [r0, r1]";
    ]

(* Golden output for the partition-colored dot export: pinning the exact
   text catches accidental drift in the HTML-like label markup, which
   graphviz rejects with opaque errors rather than rendering wrong. *)
let test_dot_partition_golden () =
  let b = Builder.create ~name:"part" () in
  let r0 = Builder.reg b in
  let r1 = Builder.reg b in
  let b0 = Builder.block b in
  let b1 = Builder.block b in
  let i0 = Builder.add b b0 (Instr.Const (r0, 1)) in
  let i1 = Builder.add b b0 (Instr.Const (r1, 2)) in
  ignore (Builder.terminate b b0 (Instr.Jump b1));
  ignore (Builder.terminate b b1 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[] in
  let partition id =
    if id = i0.Instr.id then Some 0
    else if id = i1.Instr.id then Some 1
    else None
  in
  let got = Dot.cfg_to_string ~partition f in
  let expected =
    String.concat "\n"
      [
        {|digraph "part" {|};
        {|  label="part";|};
        {|  b0 [shape=box, fontname=monospace, |}
        ^ {|label=<<table border="0" cellborder="0" cellspacing="0">|}
        ^ {|<tr><td align="left"><b>B0</b></td></tr>|}
        ^ {|<tr><td align="left" bgcolor="#a6cee3">i0: r0 = 1</td></tr>|}
        ^ {|<tr><td align="left" bgcolor="#b2df8a">i1: r1 = 2</td></tr>|}
        ^ {|<tr><td align="left">i2: jump B1</td></tr></table>>];|};
        {|  b1 [shape=box, fontname=monospace, |}
        ^ {|label=<<table border="0" cellborder="0" cellspacing="0">|}
        ^ {|<tr><td align="left"><b>B1</b></td></tr>|}
        ^ {|<tr><td align="left">i3: return</td></tr></table>>];|};
        {|  b0 -> b1;|};
        "}";
        "";
      ]
  in
  Alcotest.(check string) "partition-colored dot" expected got;
  (* And the uncolored variant keeps the plain escaped-string label. *)
  let plain = Dot.cfg_to_string f in
  Alcotest.(check bool) "plain has no table markup" false
    (contains ~needle:"<table" plain);
  Alcotest.(check bool) "plain keeps text label" true
    (contains ~needle:"r0 = 1" plain)

(* Regression: queue ids must fit the synchronization array. The seed
   validator accepted any non-negative queue id, so a produce aimed past
   the array's 256 physical queues sailed through; [?n_queues] closes
   that hole. *)
let test_validate_queue_bounds () =
  let mk q =
    let blocks =
      [|
        {
          Cfg.label = 0;
          body =
            [
              Instr.make ~id:0 (Instr.Produce (q, Reg.of_int 0));
              Instr.make ~id:1 Instr.Return;
            ];
        };
      |]
    in
    Func.make ~name:"qbound" ~cfg:(Cfg.make ~entry:0 blocks) ~n_regs:1
      ~regions:[||] ~live_in:[] ~live_out:[]
  in
  Alcotest.(check bool) "in-range queue accepted" true
    (Validate.is_valid ~n_queues:256 (mk 255));
  Alcotest.(check bool) "queue = n_queues rejected" false
    (Validate.is_valid ~n_queues:256 (mk 256));
  Alcotest.(check bool) "negative queue rejected even unbounded" false
    (Validate.is_valid (mk (-1)));
  (* Without a bound, large ids still pass (the pre-fix behaviour the
     compiler relied on before queue recolouring was threaded through). *)
  Alcotest.(check bool) "unbounded large id accepted" true
    (Validate.is_valid (mk 300));
  match Validate.errors ~n_queues:256 (mk 300) with
  | [ e ] ->
    Alcotest.(check bool) "error names the queue and the array size" true
      (contains ~needle:"queue 300" e && contains ~needle:"256" e)
  | es ->
    Alcotest.failf "expected exactly one error, got %d" (List.length es)

let tests =
  [
    Alcotest.test_case "instr defs/uses" `Quick test_instr_defs_uses;
    Alcotest.test_case "instr eval total" `Quick test_instr_eval;
    Alcotest.test_case "instr targets" `Quick test_instr_targets;
    Alcotest.test_case "builder basic" `Quick test_builder_basic;
    Alcotest.test_case "builder double terminate" `Quick
      test_builder_rejects_double_terminate;
    Alcotest.test_case "builder unterminated" `Quick
      test_builder_rejects_unterminated;
    Alcotest.test_case "builder mid-block terminator" `Quick
      test_builder_mid_block_terminator_rejected;
    Alcotest.test_case "builder regions" `Quick test_builder_regions;
    Alcotest.test_case "cfg structure" `Quick test_cfg_structure;
    Alcotest.test_case "validate bad reg" `Quick test_validate_catches_bad_reg;
    Alcotest.test_case "validate duplicate ids" `Quick
      test_validate_catches_duplicate_ids;
    Alcotest.test_case "validate unreachable return" `Quick
      test_validate_requires_reachable_return;
    Alcotest.test_case "validate queue bounds" `Quick
      test_validate_queue_bounds;
    Alcotest.test_case "printer output" `Quick test_printer_mentions;
    Alcotest.test_case "printer canonical quoting" `Quick
      test_printer_canonical;
    Alcotest.test_case "dot partition golden" `Quick
      test_dot_partition_golden;
  ]
