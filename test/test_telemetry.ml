(* gmt_telemetry: histogram bucket layout (golden), merge algebra
   (QCheck), rolling windows under a driven clock, the event log's
   sampling/ring semantics, and registry export well-formedness. *)

module H = Gmt_telemetry.Histogram
module Rolling = Gmt_telemetry.Rolling
module Events = Gmt_telemetry.Events
module Registry = Gmt_telemetry.Registry
module Json = Gmt_obs.Json

(* ----------------------------- histogram ---------------------------- *)

(* The layout is part of the wire contract (merges across processes
   depend on it), so pin it value by value. *)
let test_bucket_layout () =
  Alcotest.(check int) "n_buckets" 224 H.n_buckets;
  (* Linear region: bucket i holds exactly i. *)
  for v = 0 to 7 do
    Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) v (H.bucket_of v);
    Alcotest.(check int) (Printf.sprintf "bucket_lo %d" v) v (H.bucket_lo v)
  done;
  Alcotest.(check int) "negative clamps to 0" 0 (H.bucket_of (-5));
  (* First octave: [8,16) in 8 sub-buckets of width 1. *)
  Alcotest.(check int) "bucket_of 8" 8 (H.bucket_of 8);
  Alcotest.(check int) "bucket_of 15" 15 (H.bucket_of 15);
  (* Octave [16,32): width-2 sub-buckets. *)
  Alcotest.(check int) "bucket_of 16" 16 (H.bucket_of 16);
  Alcotest.(check int) "bucket_of 17" 16 (H.bucket_of 17);
  Alcotest.(check int) "bucket_of 18" 17 (H.bucket_of 18);
  Alcotest.(check int) "bucket_of 31" 23 (H.bucket_of 31);
  Alcotest.(check int) "bucket_of 32" 24 (H.bucket_of 32);
  (* One sample from deep in the range: 1000 = 2^9 octave, width 64.
     1000 lsr 6 = 15 -> sub 7 of octave 9 -> 8 + (9-3)*8 + 7 = 63. *)
  Alcotest.(check int) "bucket_of 1000" 63 (H.bucket_of 1000);
  Alcotest.(check int) "bucket_lo 63" 960 (H.bucket_lo 63);
  Alcotest.(check int) "bucket_hi 63" 1024 (H.bucket_hi 63);
  (* Overflow clamps into the final bucket. *)
  Alcotest.(check int) "2^30 clamps" (H.n_buckets - 1) (H.bucket_of (1 lsl 30));
  Alcotest.(check int) "max_int clamps" (H.n_buckets - 1) (H.bucket_of max_int);
  (* Structural invariants over every bucket. *)
  for i = 0 to H.n_buckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bucket_of (bucket_lo %d)" i)
      i
      (H.bucket_of (H.bucket_lo i));
    if i > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "lo monotone at %d" i)
        true
        (H.bucket_lo i > H.bucket_lo (i - 1));
    Alcotest.(check bool)
      (Printf.sprintf "lo < hi at %d" i)
      true
      (H.bucket_lo i < H.bucket_hi i);
    (* Relative error bound: bucket width <= 12.5% of its lower bound
       beyond the linear region. *)
    if i >= 8 && i < H.n_buckets - 1 then
      Alcotest.(check bool)
        (Printf.sprintf "width bound at %d" i)
        true
        (8 * (H.bucket_hi i - H.bucket_lo i) <= H.bucket_lo i)
  done

let test_histogram_stats () =
  let h = H.of_values [ 1; 2; 3; 4; 100; 1000 ] in
  Alcotest.(check int) "count" 6 (H.count h);
  Alcotest.(check int) "sum" 1110 (H.sum h);
  Alcotest.(check int) "min" 1 (H.min_value h);
  Alcotest.(check int) "max" 1000 (H.max_value h);
  Alcotest.(check (float 0.001)) "mean" 185.0 (H.mean h);
  Alcotest.(check int) "empty quantile" 0 (H.quantile (H.create ()) 0.5);
  (* Quantiles are bucket-resolution but must bracket the data. *)
  let q50 = H.quantile h 0.5 and q99 = H.quantile h 0.99 in
  Alcotest.(check bool) "q50 <= q99" true (q50 <= q99);
  Alcotest.(check bool) "q99 <= max" true (q99 <= 1000);
  Alcotest.(check int) "exact in linear region" 3 (H.quantile h 0.5)

let values_gen =
  QCheck.Gen.(
    list_size (int_range 0 200)
      (oneof
         [
           int_range 0 20;
           int_range 0 100_000;
           map (fun k -> 1 lsl k) (int_range 0 35);
         ]))

let arb_values = QCheck.make ~print:QCheck.Print.(list int) values_gen

let same_hist name a b =
  QCheck.assume true;
  H.counts a = H.counts b
  && H.count a = H.count b && H.sum a = H.sum b
  && H.min_value a = H.min_value b
  && H.max_value a = H.max_value b
  || QCheck.Test.fail_reportf "%s: histograms differ" name

let prop_merge_assoc =
  QCheck.Test.make ~count:200 ~name:"histogram merge is associative"
    (QCheck.triple arb_values arb_values arb_values)
    (fun (xs, ys, zs) ->
      let a = H.of_values xs and b = H.of_values ys and c = H.of_values zs in
      same_hist "assoc" (H.merge a (H.merge b c)) (H.merge (H.merge a b) c))

let prop_merge_comm =
  QCheck.Test.make ~count:200 ~name:"histogram merge is commutative"
    (QCheck.pair arb_values arb_values)
    (fun (xs, ys) ->
      let a = H.of_values xs and b = H.of_values ys in
      same_hist "comm" (H.merge a b) (H.merge b a))

let prop_merge_split =
  QCheck.Test.make ~count:200
    ~name:"recording a stream = merging any split of it"
    (QCheck.pair arb_values arb_values)
    (fun (xs, ys) ->
      same_hist "split"
        (H.of_values (xs @ ys))
        (H.merge (H.of_values xs) (H.of_values ys)))

(* The 12.5% guarantee only holds below the overflow clamp at 2^30, so
   this generator stays inside the resolved range. *)
let arb_resolved =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(
      list_size (int_range 0 200)
        (oneof
           [
             int_range 0 20;
             int_range 0 100_000;
             map (fun k -> 1 lsl k) (int_range 0 29);
           ]))

let prop_quantile_error =
  QCheck.Test.make ~count:200
    ~name:"quantile within 12.5% above the exact order statistic"
    (QCheck.map (fun l -> 1 :: l) arb_resolved)
    (fun xs ->
      let h = H.of_values xs in
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
          let exact = List.nth sorted (rank - 1) in
          let est = H.quantile h q in
          est >= exact && float_of_int est <= (1.125 *. float_of_int exact) +. 1.0)
        [ 0.5; 0.9; 0.99 ])

(* ------------------------------ rolling ----------------------------- *)

let test_rolling_sum () =
  let r = Rolling.create ~slots:5 ~slot_s:1.0 Rolling.Sum in
  Alcotest.(check (float 0.001)) "window_s" 5.0 (Rolling.window_s r);
  Rolling.add r ~now:100.0 3;
  Rolling.add r ~now:100.4 2;
  Rolling.add r ~now:101.0 1;
  Alcotest.(check int) "in-window total" 6 (Rolling.total r ~now:101.5);
  (* 100.x expires once now - slot > window. *)
  Alcotest.(check int) "partial expiry" 1 (Rolling.total r ~now:105.5);
  Alcotest.(check int) "full expiry" 0 (Rolling.total r ~now:200.0);
  (* A slot id reused modulo the ring must not resurrect old counts. *)
  Rolling.add r ~now:200.0 7;
  Alcotest.(check int) "fresh epoch" 7 (Rolling.total r ~now:200.0)

let test_rolling_peak () =
  let r = Rolling.create ~slots:3 ~slot_s:1.0 Rolling.Peak in
  Rolling.add r ~now:10.0 4;
  Rolling.add r ~now:10.2 9;
  Rolling.add r ~now:11.0 2;
  Alcotest.(check int) "peak" 9 (Rolling.total r ~now:11.0);
  Alcotest.(check int) "peak after expiry" 2 (Rolling.total r ~now:13.5);
  Alcotest.(check int) "empty peak" 0 (Rolling.total r ~now:100.0)

(* ------------------------------ events ------------------------------ *)

let test_events_ring_and_sampling () =
  Events.reset ();
  Fun.protect ~finally:Events.reset @@ fun () ->
  Events.emit ~kind:"test.a" [ ("n", Json.Num 1.0) ];
  Events.emit ~severity:Events.Warn ~kind:"test.b"
    [ ("msg", Json.Str "da\"nger") ];
  let lines = Events.recent () in
  Alcotest.(check int) "two kept" 2 (List.length lines);
  List.iter
    (fun l ->
      match Json.parse l with
      | Ok (Json.Obj fields) ->
        Alcotest.(check bool) "has ts" true (List.mem_assoc "ts" fields);
        Alcotest.(check bool) "has kind" true (List.mem_assoc "kind" fields)
      | _ -> Alcotest.fail ("event line is not a JSON object: " ^ l))
    lines;
  (* Sampling: keep 1 in 3 Info events, but count all of them; warns
     are exempt. *)
  Events.reset ();
  Events.set_sample_every 3;
  for _ = 1 to 9 do
    Events.emit ~kind:"noisy" []
  done;
  for _ = 1 to 4 do
    Events.emit ~severity:Events.Warn ~kind:"alarm" []
  done;
  Alcotest.(check int) "emitted counts all" 9 (Events.emitted ~kind:"noisy");
  let kept kind =
    List.length
      (List.filter
         (fun l ->
           match Json.parse l with
           | Ok j -> Json.member "kind" j = Some (Json.Str kind)
           | Error _ -> false)
         (Events.recent ()))
  in
  Alcotest.(check int) "1-in-3 kept" 3 (kept "noisy");
  Alcotest.(check int) "warns never sampled" 4 (kept "alarm");
  (* Bounded ring: oldest lines fall off. *)
  Events.reset ();
  Events.set_capacity 4;
  for i = 1 to 10 do
    Events.emit ~kind:(Printf.sprintf "k%d" i) []
  done;
  Alcotest.(check int) "ring bounded" 4 (List.length (Events.recent ()));
  Alcotest.(check int) "oldest dropped" 1 (kept "k7");
  Alcotest.(check int) "newest kept" 1 (kept "k10")

(* ----------------------------- registry ----------------------------- *)

let test_registry_export () =
  let reg = Registry.create () in
  let c = Registry.counter reg "req.total" in
  Registry.incr c;
  Registry.add c 4;
  Alcotest.(check int) "counter" 5 (Registry.counter_value c);
  Alcotest.(check bool) "interned" true (c == Registry.counter reg "req.total");
  let g = Registry.gauge reg "in_flight" in
  Registry.set_gauge g 3;
  let w = Registry.window ~slots:10 ~slot_s:1.0 reg Rolling.Sum "win.x" in
  Rolling.add w ~now:50.0 2;
  let h = Registry.histogram reg "latency.run" in
  List.iter (H.record h) [ 10; 20; 30; 40 ];
  let j = Registry.json ~now:50.0 reg in
  (match Json.member "schema" j with
  | Some (Json.Str s) -> Alcotest.(check string) "schema" "gmt-telemetry/1" s
  | _ -> Alcotest.fail "no schema");
  (* The rendered string must re-parse to the same value. *)
  (match Json.parse (Registry.render_json ~now:50.0 reg) with
  | Ok j2 -> Alcotest.(check bool) "self-parse round-trip" true (j = j2)
  | Error e -> Alcotest.fail ("render_json does not parse: " ^ e));
  (match Json.member "histograms" j with
  | Some hs -> (
    match Json.member "latency.run" hs with
    | Some hj ->
      Alcotest.(check (option (float 0.001)))
        "count" (Some 4.0)
        (match Json.member "count" hj with
        | Some (Json.Num f) -> Some f
        | _ -> None)
    | None -> Alcotest.fail "histogram missing from export")
  | None -> Alcotest.fail "no histograms section");
  (* Prometheus text: TYPE lines pair with samples, histogram series are
     cumulative and agree with _count. *)
  let text = Registry.prometheus ~now:50.0 reg in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun l ->
      if l <> "" && not (String.length l >= 6 && String.sub l 0 6 = "# TYPE")
      then
        match String.split_on_char ' ' l with
        | [ name; value ] ->
          Alcotest.(check bool) ("prefixed: " ^ l) true
            (String.length name > 4 && String.sub name 0 4 = "gmt_");
          Alcotest.(check bool) ("numeric: " ^ l) true
            (match float_of_string_opt value with
            | Some _ -> true
            | None ->
              (* bucket lines carry a label before the value *)
              String.contains name '{')
        | _ -> Alcotest.fail ("unparseable sample line: " ^ l))
    lines;
  let cum =
    List.filter_map
      (fun l ->
        match String.index_opt l '}' with
        | Some i
          when String.length l > 17
               && String.sub l 0 23 = "gmt_latency_run_bucket{" ->
          int_of_string_opt
            (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
        | _ -> None)
      lines
  in
  Alcotest.(check bool) "has bucket series" true (cum <> []);
  let rec nondec = function
    | a :: (b :: _ as rest) -> a <= b && nondec rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative non-decreasing" true (nondec cum);
  Alcotest.(check (option int))
    "last bucket = count" (Some 4)
    (match List.rev cum with x :: _ -> Some x | [] -> None)

let tests =
  [
    Alcotest.test_case "bucket layout (golden)" `Quick test_bucket_layout;
    Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
    QCheck_alcotest.to_alcotest prop_merge_assoc;
    QCheck_alcotest.to_alcotest prop_merge_comm;
    QCheck_alcotest.to_alcotest prop_merge_split;
    QCheck_alcotest.to_alcotest prop_quantile_error;
    Alcotest.test_case "rolling sum window" `Quick test_rolling_sum;
    Alcotest.test_case "rolling peak window" `Quick test_rolling_peak;
    Alcotest.test_case "event ring + sampling" `Quick
      test_events_ring_and_sampling;
    Alcotest.test_case "registry export + prometheus" `Quick
      test_registry_export;
  ]
