open Gmt_ir
module Dom = Gmt_graphalg.Dom
module Digraph = Gmt_graphalg.Digraph

type t = {
  cfg : Cfg.t;
  dep : Instr.label list array;      (* block -> controlling blocks *)
  ctl : Instr.label list array;      (* branch block -> controlled blocks *)
  pdom : Dom.t;
}

let compute (f : Func.t) =
  let cfg = f.cfg in
  let n = Cfg.n_blocks cfg in
  let g, exit_node = Cfg.digraph_with_exit cfg in
  let pdom = Dom.compute (Digraph.transpose g) exit_node in
  let dep = Array.make n [] in
  let ctl = Array.make n [] in
  let add_dep b a =
    if not (List.mem a dep.(b)) then begin
      dep.(b) <- a :: dep.(b);
      ctl.(a) <- b :: ctl.(a)
    end
  in
  for a = 0 to n - 1 do
    let succs = Cfg.succs cfg a in
    (* Only branches create control dependences (single-successor blocks
       decide nothing). *)
    if List.length succs > 1 then
      List.iter
        (fun s ->
          if Dom.is_reachable pdom s && Dom.is_reachable pdom a then begin
            let stop =
              match Dom.idom pdom a with Some p -> p | None -> exit_node
            in
            let rec walk t =
              if t <> stop && t <> exit_node then begin
                add_dep t a;
                match Dom.idom pdom t with
                | Some p -> walk p
                | None -> ()
              end
            in
            if not (Dom.dominates pdom s a) || s = a then walk s
            else (* s post-dominates a: no dependence along this edge *) ()
          end)
        succs
  done;
  Array.iteri (fun i l -> dep.(i) <- List.rev l) dep;
  Array.iteri (fun i l -> ctl.(i) <- List.rev l) ctl;
  { cfg; dep; ctl; pdom }

let deps t l = t.dep.(l)

let closure_deps t l =
  (* BFS over the controlled-by relation. *)
  let n = Array.length t.dep in
  let seen = Array.make n false in
  let out = ref [] in
  let q = Queue.create () in
  List.iter (fun a -> Queue.push a q) t.dep.(l);
  while not (Queue.is_empty q) do
    let a = Queue.pop q in
    if not seen.(a) then begin
      seen.(a) <- true;
      out := a :: !out;
      List.iter (fun p -> Queue.push p q) t.dep.(a)
    end
  done;
  List.rev !out

let branch_deps t l =
  List.map (fun a -> (Cfg.terminator t.cfg a).Instr.id) t.dep.(l)

let controls t l = t.ctl.(l)
let postdom t = t.pdom
