(** Generic iterative data-flow engine over CFGs.

    Problems provide a per-instruction transfer function; the engine
    computes a fixpoint of block-boundary facts with a worklist, and
    derives per-program-point facts on demand. Both the classic analyses
    (liveness, reaching definitions) and COCO's thread-aware analyses
    (SAFE, liveness w.r.t. a target thread) instantiate this functor. *)

open Gmt_ir

type direction = Forward | Backward

module type PROBLEM = sig
  type fact

  val direction : direction
  val equal : fact -> fact -> bool

  (** Confluence operator (set union for may-problems, intersection for
      must-problems). *)
  val meet : fact -> fact -> fact

  (** Fact at the boundary: function entry for forward problems, the
      point after every [Return] for backward problems. *)
  val boundary : fact

  (** Optimistic initial value for interior points (bottom for
      may-problems, top/universe for must-problems). *)
  val start : fact

  (** [transfer i fact] is the fact after [i] given the fact before it
      (forward), or before [i] given the fact after it (backward). *)
  val transfer : Instr.t -> fact -> fact
end

module Make (P : PROBLEM) : sig
  type result

  val solve : Cfg.t -> result

  (** Fact at a block's start (before its first instruction). *)
  val block_in : result -> Instr.label -> P.fact

  (** Fact at a block's end (after its terminator). *)
  val block_out : result -> Instr.label -> P.fact

  (** Fact at the point just before / just after an instruction, by id.
      @raise Not_found for unknown instruction ids. *)
  val before : result -> int -> P.fact

  val after : result -> int -> P.fact
end
