type arg = I of int | S of string

type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  alloc_bytes : float;
  domain : int;
  args : (string * arg) list;
}

(* ------------------------------ state ------------------------------ *)

let tracing = Atomic.make false
let metrics_on = Atomic.make false

(* Completed spans, newest first. Shared by all domains. *)
let sink_lock = Mutex.create ()
let sink : span list ref = ref []

(* Stack of active [collect] scopes, per domain. *)
let collectors_key : span list ref list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let enable_tracing () = Atomic.set tracing true
let enable_metrics () = Atomic.set metrics_on true
let tracing_enabled () = Atomic.get tracing
let metrics_enabled () = Atomic.get metrics_on

let recording () =
  Atomic.get tracing || Domain.DLS.get collectors_key <> []

(* ------------------------------ metrics ------------------------------ *)

module Metrics = struct
  let lock = Mutex.create ()
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64

  let merge f k v =
    if Atomic.get metrics_on then begin
      Mutex.lock lock;
      let cur = Hashtbl.find_opt tbl k in
      Hashtbl.replace tbl k (match cur with None -> v | Some c -> f c v);
      Mutex.unlock lock
    end

  let add k v = merge ( + ) k v
  let peak k v = merge max k v

  let get k =
    Mutex.lock lock;
    let v = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
    Mutex.unlock lock;
    v

  let clear () =
    Mutex.lock lock;
    Hashtbl.reset tbl;
    Mutex.unlock lock

  let sorted_bindings () =
    Mutex.lock lock;
    let bs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    Mutex.unlock lock;
    List.sort (fun (a, _) (b, _) -> compare a b) bs
end

let reset () =
  Atomic.set tracing false;
  Atomic.set metrics_on false;
  Mutex.lock sink_lock;
  sink := [];
  Mutex.unlock sink_lock;
  Metrics.clear ()

(* ------------------------------ spans ------------------------------ *)

let record_global s =
  Mutex.lock sink_lock;
  sink := s :: !sink;
  Mutex.unlock sink_lock

let span ?(cat = "pass") ?(args = []) name f =
  let collectors = Domain.DLS.get collectors_key in
  if (not (Atomic.get tracing)) && collectors = [] then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let a0 = Gc.allocated_bytes () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      let s =
        {
          name;
          cat;
          ts_us = t0 *. 1e6;
          dur_us = (t1 -. t0) *. 1e6;
          alloc_bytes = Gc.allocated_bytes () -. a0;
          domain = (Domain.self () :> int);
          args;
        }
      in
      List.iter (fun r -> r := s :: !r) collectors;
      if Atomic.get tracing then record_global s
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

let record s =
  List.iter (fun r -> r := s :: !r) (Domain.DLS.get collectors_key);
  if Atomic.get tracing then record_global s

let collect f =
  let r = ref [] in
  let stack = Domain.DLS.get collectors_key in
  Domain.DLS.set collectors_key (r :: stack);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set collectors_key stack)
    (fun () ->
      let v = f () in
      (v, List.rev !r))

let spans () =
  Mutex.lock sink_lock;
  let ss = !sink in
  Mutex.unlock sink_lock;
  List.rev ss

(* ------------------------------ export ------------------------------ *)

let arg_to_json = function
  | I i -> string_of_int i
  | S s -> Json.escape s

let trace_json () =
  let evs = spans () in
  let t0 =
    List.fold_left (fun acc s -> Float.min acc s.ts_us) Float.infinity evs
  in
  let t0 = if evs = [] then 0.0 else t0 in
  let evs =
    List.sort
      (fun a b ->
        compare (a.ts_us, a.domain, a.name) (b.ts_us, b.domain, b.name))
      evs
  in
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.domain) evs)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit ev =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf "\n";
    Buffer.add_string buf ev
  in
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\
            \"args\":{\"name\":%s}}"
           d
           (Json.escape (Printf.sprintf "domain %d" d))))
    domains;
  List.iter
    (fun s ->
      let args =
        ("alloc_bytes", I (int_of_float s.alloc_bytes)) :: s.args
      in
      let args_json =
        String.concat ","
          (List.map
             (fun (k, v) -> Json.escape k ^ ":" ^ arg_to_json v)
             args)
      in
      emit
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"name\":%s,\"cat\":%s,\
            \"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
           s.domain (Json.escape s.name) (Json.escape s.cat)
           (s.ts_us -. t0) s.dur_us args_json))
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let metrics_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"gmt-metrics/1\",\"counters\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf "\n";
      Buffer.add_string buf (Json.escape k);
      Buffer.add_string buf ":";
      Buffer.add_string buf (string_of_int v))
    (Metrics.sorted_bindings ());
  Buffer.add_string buf "\n}}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_trace path = write_file path (trace_json ())
let write_metrics path = write_file path (metrics_json ())
