(* 177.mesa general_textured_triangle (SPEC-CPU): rasterization of spans in
   two per-pixel phases, the way the real routine separates interpolation/
   depth-testing from texel fetch and framebuffer blending:

   - phase 1 interpolates z/color/texture coordinates along the span,
     depth-tests against the z-buffer (hammock + conditional z update) and
     writes the span buffer;
   - phase 2 reads the span buffer, fetches texels and blends into the
     framebuffer.

   The two phases communicate through memory (span buffer), so a GREMIO
   partition that splits them across threads has inter-thread memory
   dependences — synchronized per pixel by MTCG, hoisted to once per span
   by COCO (the paper reports >99% of mesa's memory synchronizations
   removed). *)

open Gmt_ir

let zbuf_base = 0
let tex_base = 8192
let fb_base = 16384
let span_base = 24576
let spanbuf_base = 28672

let build () =
  let k = Kit.create "mesa" in
  let rz = Kit.region k "zbuffer" in
  let rtex = Kit.region k "texture" in
  let rfb = Kit.region k "framebuffer" in
  let rspan = Kit.region k "span_summary" in
  let rsb = Kit.region k "span_buffer" in
  let n_spans = Kit.reg k in
  let width = Kit.reg k in
  let span = Kit.reg k and x = Kit.reg k and x2 = Kit.reg k in
  let z = Kit.reg k and red = Kit.reg k and tcoord = Kit.reg k in
  let pre = Kit.block k in
  let shead = Kit.block k in
  let sbody = Kit.block k in
  let phead = Kit.block k in
  let pbody = Kit.block k in
  let zpass = Kit.block k in
  let zfail = Kit.block k in
  let pcont = Kit.block k in
  let qhead = Kit.block k in
  let qbody = Kit.block k in
  let stail = Kit.block k in
  let exit = Kit.block k in
  let zero = Kit.const k pre 0 in
  let one = Kit.const k pre 1 in
  let z_b = Kit.const k pre zbuf_base in
  let t_b = Kit.const k pre tex_base in
  let f_b = Kit.const k pre fb_base in
  let s_b = Kit.const k pre span_base in
  let sb_b = Kit.const k pre spanbuf_base in
  let dz = Kit.const k pre 3 in
  let dr = Kit.const k pre 5 in
  let dt = Kit.const k pre 7 in
  let texmask = Kit.const k pre 4095 in
  let zmask = Kit.const k pre 8191 in
  Kit.copy_to k pre ~dst:span zero;
  Kit.jump k pre shead;
  let sc = Kit.bin k shead Instr.Lt span n_spans in
  Kit.branch k shead sc sbody exit;
  (* span setup *)
  let z0 = Kit.bin k sbody Instr.Mul span (Kit.const k sbody 11) in
  Kit.copy_to k sbody ~dst:z z0;
  Kit.copy_to k sbody ~dst:red span;
  Kit.copy_to k sbody ~dst:tcoord z0;
  Kit.copy_to k sbody ~dst:x zero;
  Kit.jump k sbody phead;
  (* phase 1: interpolation + depth test + span buffer *)
  let pc = Kit.bin k phead Instr.Lt x width in
  Kit.branch k phead pc pbody qhead;
  Kit.bin_to k pbody Instr.Add ~dst:z z dz;
  Kit.bin_to k pbody Instr.Add ~dst:red red dr;
  Kit.bin_to k pbody Instr.Add ~dst:tcoord tcoord dt;
  let spanw = Kit.bin k pbody Instr.Mul span width in
  let px = Kit.bin k pbody Instr.Add spanw x in
  let pxm = Kit.bin k pbody Instr.And px zmask in
  let za = Kit.bin k pbody Instr.Add z_b pxm in
  let zold = Kit.load k pbody rz za 0 in
  let nearer = Kit.bin k pbody Instr.Lt z zold in
  Kit.branch k pbody nearer zpass zfail;
  Kit.store k zpass rz za 0 z;
  let mixed = Kit.bin k zpass Instr.Add red tcoord in
  let sba = Kit.bin k zpass Instr.Add sb_b x in
  Kit.store k zpass rsb sba 0 mixed;
  Kit.jump k zpass pcont;
  (* depth fail: record a transparent pixel *)
  let sba2 = Kit.bin k zfail Instr.Add sb_b x in
  Kit.store k zfail rsb sba2 0 zero;
  Kit.jump k zfail pcont;
  Kit.bin_to k pcont Instr.Add ~dst:x x one;
  Kit.jump k pcont phead;
  (* phase 2: texel fetch + framebuffer blend, reading the span buffer *)
  Kit.copy_to k qhead ~dst:x2 zero;
  Kit.jump k qhead qbody;
  let sba3 = Kit.bin k qbody Instr.Add sb_b x2 in
  let frag = Kit.load k qbody rsb sba3 0 in
  let tm = Kit.bin k qbody Instr.And frag texmask in
  let ta = Kit.bin k qbody Instr.Add t_b tm in
  let texel = Kit.load k qbody rtex ta 0 in
  let spanw2 = Kit.bin k qbody Instr.Mul span width in
  let px2 = Kit.bin k qbody Instr.Add spanw2 x2 in
  let pxm2 = Kit.bin k qbody Instr.And px2 zmask in
  let fa = Kit.bin k qbody Instr.Add f_b pxm2 in
  let old = Kit.load k qbody rfb fa 0 in
  let blended0 = Kit.bin k qbody Instr.Add frag texel in
  let blended = Kit.bin k qbody Instr.Add blended0 old in
  Kit.store k qbody rfb fa 0 blended;
  Kit.bin_to k qbody Instr.Add ~dst:x2 x2 one;
  let qc = Kit.bin k qbody Instr.Lt x2 width in
  Kit.branch k qbody qc qbody stail;
  (* span tail: summary reads back the middle pixel *)
  let halfw = Kit.bin k stail Instr.Div width (Kit.const k stail 2) in
  let spanw3 = Kit.bin k stail Instr.Mul span width in
  let mid = Kit.bin k stail Instr.Add spanw3 halfw in
  let midm = Kit.bin k stail Instr.And mid zmask in
  let fa2 = Kit.bin k stail Instr.Add f_b midm in
  let sample = Kit.load k stail rfb fa2 0 in
  let sa = Kit.bin k stail Instr.Add s_b span in
  Kit.store k stail rspan sa 0 sample;
  Kit.bin_to k stail Instr.Add ~dst:span span one;
  Kit.jump k stail shead;
  Kit.ret k exit;
  (k, n_spans, width)

let workload () =
  let k, n_spans, width = build () in
  let func = Kit.finish k ~live_in:[ n_spans; width ] in
  let input ~spans ~w seed =
    {
      Workload.regs = [ (n_spans, spans); (width, w) ];
      mem =
        Kit.fill ~base:zbuf_base ~n:8192 (fun _ -> 1 lsl 20)
        @ Kit.rand_fill ~seed ~base:tex_base ~n:4096 ~bound:256;
    }
  in
  Workload.make ~name:"177.mesa" ~suite:"SPEC-CPU"
    ~func_name:"general_textured_triangle" ~exec_pct:32
    ~description:
      "Textured span rasterization in two per-pixel phases communicating \
       through the span buffer: depth-test hammock, texel fetch, \
       framebuffer blend"
    ~func
    ~train:(input ~spans:16 ~w:24 9)
    ~reference:(input ~spans:96 ~w:64 77)
    ()
