(** Communication plans.

    A [Comm.t] is one planned inter-thread transfer: a produce inserted in
    the source thread and a matching consume in the target thread, both at
    the {e same} program point of the original CFG ("corresponding
    points"), which is what makes the generated code deadlock-free. The
    baseline MTCG plan puts every communication at the dependence source;
    COCO computes better points via min-cut. The weaver ({!Mtcg.generate})
    consumes either plan. *)

open Gmt_ir

(** A program point of the original CFG. *)
type point =
  | Before of int                        (** just before instruction [id] *)
  | After of int                         (** just after instruction [id] *)
  | Block_entry of Instr.label           (** before a block's first instruction *)
  | On_edge of Instr.label * Instr.label (** on a CFG edge (requires splitting) *)

type payload =
  | Data of Reg.t  (** register transfer: [produce q = r] / [consume r = q] *)
  | Sync           (** memory ordering token: [produce.sync] / [consume.sync] *)

type t = {
  index : int;  (** unique; doubles as the communication queue number *)
  payload : payload;
  src : int;    (** source thread *)
  dst : int;    (** target thread *)
  point : point;
}

(** Block a point belongs to. [On_edge (a, b)] reports [a] (the branch
    block that guards the edge). *)
val block_of_point : Cfg.t -> point -> Instr.label

val point_to_string : point -> string
val pp : Format.formatter -> t -> unit

(** Comms indexed consecutively from 0. *)
val number : (payload * int * int * point) list -> t list
