open Gmt_ir
module Pdg = Gmt_pdg.Pdg
module Partition = Gmt_sched.Partition
module Controldep = Gmt_analysis.Controldep
module Profile = Gmt_analysis.Profile
module Relevant = Gmt_mtcg.Relevant
module Comm = Gmt_mtcg.Comm
module Mtcg = Gmt_mtcg.Mtcg
module Topo = Gmt_graphalg.Topo

type stats = {
  iterations : int;
  register_cuts : int;
  memory_cuts : int;
  fallbacks : int;
}

type spec = Comm.payload * int * int * Comm.point

let optimize ?(control_penalty = true) ?(max_iterations = 10) pdg partition
    profile =
  let f = Pdg.func pdg in
  let cfg = f.Func.cfg in
  let cd = Controldep.compute f in
  let n_threads = Partition.n_threads partition in
  let reg_cuts = ref 0 and mem_cuts = ref 0 and fallbacks = ref 0 in
  (* Quasi-topological order over thread pairs: when the thread graph is a
     pipeline (DSWP), processing pairs in flow order makes the relevance
     fixpoint converge in one pass. *)
  let pair_rank =
    let g = Partition.thread_graph partition pdg in
    match Topo.sort_opt g with
    | Some order ->
      let idx = Array.make n_threads 0 in
      List.iteri (fun i t -> idx.(t) <- i) order;
      fun (ts, tt) -> (idx.(ts), idx.(tt))
    | None -> fun (ts, tt) -> (ts, tt)
  in
  (* All communications ever planned; drives relevance growth across
     iterations (relevant sets only grow, ensuring convergence). *)
  let relevance_specs : (spec, unit) Hashtbl.t = Hashtbl.create 64 in
  let specs_to_comms () =
    Hashtbl.fold (fun s () acc -> s :: acc) relevance_specs []
    |> List.sort compare |> Comm.number
  in
  let compute_rel () =
    Relevant.compute f cd partition (specs_to_comms ())
  in
  (* Register and memory work for a thread pair under current relevance. *)
  let regs_for rel ts tt =
    List.filter_map
      (fun (a : Pdg.arc) ->
        match a.kind with
        | Pdg.Reg r -> (
          match
            (Partition.thread_of_opt partition a.src,
             Partition.thread_of_opt partition a.dst)
          with
          | Some s, Some d when s = ts && s <> tt ->
            let target_use =
              d = tt
              || Relevant.is_relevant_branch rel ~thread:tt ~branch_id:a.dst
                 && Instr.is_branch (Cfg.find_instr cfg a.dst)
            in
            if target_use then Some r else None
          | _ -> None)
        | _ -> None)
      (Pdg.arcs pdg)
    |> List.sort_uniq Reg.compare
  in
  let mem_pairs_for ts tt =
    List.filter_map
      (fun (a : Pdg.arc) ->
        match a.kind with
        | Pdg.Mem _ -> (
          match
            (Partition.thread_of_opt partition a.src,
             Partition.thread_of_opt partition a.dst)
          with
          | Some s, Some d when s = ts && d = tt -> Some (a.src, a.dst)
          | _ -> None)
        | _ -> None)
      (Pdg.arcs pdg)
    |> List.sort_uniq compare
  in
  let final_specs = ref [] in
  let prev_specs = ref None in
  let iterations = ref 0 in
  (try
     for iter = 1 to max_iterations do
       incr iterations;
       Gmt_obs.Obs.span ~args:[ ("iter", Gmt_obs.Obs.I iter) ]
         "coco.iteration"
       @@ fun () ->
       let iter_specs = ref [] in
       (* Candidate pairs: any pair with register or memory work. *)
       let rel0 = compute_rel () in
       let pairs = ref [] in
       for ts = 0 to n_threads - 1 do
         for tt = 0 to n_threads - 1 do
           if ts <> tt then
             if regs_for rel0 ts tt <> [] || mem_pairs_for ts tt <> [] then
               pairs := (ts, tt) :: !pairs
         done
       done;
       let pairs =
         List.sort (fun a b -> compare (pair_rank a) (pair_rank b)) !pairs
       in
       List.iter
         (fun (ts, tt) ->
           let rel = compute_rel () in
           let ctx =
             {
               Flowgraph.func = f;
               cd;
               profile;
               partition;
               rel;
               src_thread = ts;
               dst_thread = tt;
               control_penalty;
             }
           in
           let safety = Safety.compute f partition ~thread:ts in
           let tlive = Thread_live.compute f partition rel ~thread:tt in
           let pair_specs = ref [] in
           List.iter
             (fun r ->
               incr reg_cuts;
               let res = Flowgraph.solve_register ctx ~reg:r ~safety ~tlive in
               if not res.Flowgraph.finite then incr fallbacks;
               List.iter
                 (fun p -> pair_specs := (Comm.Data r, ts, tt, p) :: !pair_specs)
                 res.Flowgraph.points)
             (regs_for rel ts tt);
           (match mem_pairs_for ts tt with
           | [] -> ()
           | mps ->
             incr mem_cuts;
             let res = Flowgraph.solve_memory ctx ~pairs:mps in
             List.iter
               (fun p -> pair_specs := (Comm.Sync, ts, tt, p) :: !pair_specs)
               res.Flowgraph.points);
           (* Record for relevance growth (Update_Relevant_Branches). *)
           List.iter
             (fun s ->
               if not (Hashtbl.mem relevance_specs s) then
                 Hashtbl.replace relevance_specs s ())
             !pair_specs;
           iter_specs := !pair_specs @ !iter_specs)
         pairs;
       let canon = List.sort_uniq compare !iter_specs in
       final_specs := canon;
       match !prev_specs with
       | Some old when old = canon -> raise Exit
       | _ -> prev_specs := Some canon
     done
   with Exit -> ());
  let plan = { Mtcg.comms = Comm.number !final_specs } in
  ( plan,
    {
      iterations = !iterations;
      register_cuts = !reg_cuts;
      memory_cuts = !mem_cuts;
      fallbacks = !fallbacks;
    } )

let run ?control_penalty pdg partition profile =
  let plan, _ = optimize ?control_penalty pdg partition profile in
  Mtcg.generate pdg partition plan
