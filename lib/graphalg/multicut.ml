type arc = { u : int; v : int; cap : int; tag : int }
type result = { cut_tags : int list; total_cost : int }

module Iset = Set.Make (Int)

let solve ~n ~arcs ~pairs =
  let removed = ref Iset.empty in
  let cut_tags = ref [] in
  let total = ref 0 in
  let solve_pair (src, sink) =
    if src <> sink then begin
      let net = Maxflow.create n in
      (* arc id -> tag, for live arcs of this round *)
      let tag_of = Hashtbl.create 64 in
      List.iter
        (fun a ->
          if not (Iset.mem a.tag !removed) then begin
            let id = Maxflow.add_arc net a.u a.v a.cap in
            (* Duplicate (u,v) arcs collapse onto one id; keep first tag. *)
            if not (Hashtbl.mem tag_of id) then Hashtbl.add tag_of id a.tag
          end)
        arcs;
      let cut = Maxflow.min_cut net ~src ~sink in
      List.iter
        (fun (_, _, id) ->
          match Hashtbl.find_opt tag_of id with
          | Some tag ->
            if not (Iset.mem tag !removed) then begin
              removed := Iset.add tag !removed;
              cut_tags := tag :: !cut_tags;
              let _, _, cap = Maxflow.arc_info net id in
              total := !total + cap
            end
          | None -> ())
        cut.Maxflow.arcs
    end
  in
  List.iter solve_pair pairs;
  { cut_tags = List.rev !cut_tags; total_cost = !total }
