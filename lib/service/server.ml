module Json = Gmt_obs.Json
module Obs = Gmt_obs.Obs
module Cache = Gmt_cache.Cache
module Pool = Gmt_parallel.Pool
module Text = Gmt_frontend.Text
module V = Gmt_core.Velocity
module Registry = Gmt_telemetry.Registry
module Histogram = Gmt_telemetry.Histogram
module Rolling = Gmt_telemetry.Rolling
module Events = Gmt_telemetry.Events
module Trace = Gmt_telemetry.Trace

type config = {
  socket : string;
  tcp : (string * int) option;
  jobs : int;
  cache_dir : string option;
  mem_capacity : int;
  queue_bound : int;
  fuel_cap : int option;
  telemetry : bool;
  coalesce : bool;
}

let default_config ~socket =
  {
    socket;
    tcp = None;
    jobs = Pool.default_jobs ();
    cache_dir = None;
    mem_capacity = 128;
    queue_bound = 64;
    fuel_cap = None;
    telemetry = true;
    coalesce = true;
  }

(* Every instrument the request path touches, resolved once at startup —
   the hot path never does a registry (table) lookup. Histogram units
   are microseconds. *)
type instruments = {
  reg : Registry.t;
  c_requests : Registry.counter;
  c_errors : Registry.counter;
  c_busy : Registry.counter;
  c_timeouts : Registry.counter;
  c_hits : Registry.counter;
  c_misses : Registry.counter;
  c_traced : Registry.counter;
  c_sf_leads : Registry.counter;
  c_sf_waits : Registry.counter;
  c_repl_ingested : Registry.counter;
  g_in_flight : Registry.gauge;
  (* Scheduler counters mirrored as gauges: refreshed from
     [Pool.stats] on every stats request, so the Prometheus exposition
     and the telemetry JSON carry the work-stealing runtime's health
     without the scheduler ever touching the registry on its hot
     paths. *)
  g_pool_tasks : Registry.gauge;
  g_pool_injected : Registry.gauge;
  g_pool_steal_att : Registry.gauge;
  g_pool_steal_ok : Registry.gauge;
  g_pool_parks : Registry.gauge;
  g_pool_depth_peak : Registry.gauge;
  w_hits : Rolling.t;
  w_misses : Rolling.t;
  w_busy : Rolling.t;
  w_timeouts : Rolling.t;
  w_in_flight_peak : Rolling.t;
  op_hists : (string * Histogram.t) array;
  stage_hists : (string * Histogram.t) array;
}

let make_instruments () =
  let reg = Registry.create () in
  {
    reg;
    c_requests = Registry.counter reg "req.total";
    c_errors = Registry.counter reg "req.errors";
    c_busy = Registry.counter reg "req.busy";
    c_timeouts = Registry.counter reg "req.fuel_timeouts";
    c_hits = Registry.counter reg "req.cache.hits";
    c_misses = Registry.counter reg "req.cache.misses";
    c_traced = Registry.counter reg "req.traced";
    c_sf_leads = Registry.counter reg "farm.singleflight.leads";
    c_sf_waits = Registry.counter reg "farm.singleflight.waits";
    c_repl_ingested = Registry.counter reg "farm.replication.ingested";
    g_in_flight = Registry.gauge reg "in_flight";
    g_pool_tasks = Registry.gauge reg "pool.tasks_run";
    g_pool_injected = Registry.gauge reg "pool.injected";
    g_pool_steal_att = Registry.gauge reg "pool.steals_attempted";
    g_pool_steal_ok = Registry.gauge reg "pool.steals_succeeded";
    g_pool_parks = Registry.gauge reg "pool.parks";
    g_pool_depth_peak = Registry.gauge reg "pool.deque_depth_peak";
    w_hits = Registry.window reg Rolling.Sum "win.cache.hits";
    w_misses = Registry.window reg Rolling.Sum "win.cache.misses";
    w_busy = Registry.window reg Rolling.Sum "win.busy";
    w_timeouts = Registry.window reg Rolling.Sum "win.fuel_timeouts";
    w_in_flight_peak = Registry.window reg Rolling.Peak "win.in_flight.peak";
    op_hists =
      Array.map
        (fun op -> (op, Registry.histogram reg ("latency." ^ op)))
        [| "run"; "check"; "sweep" |];
    stage_hists =
      Array.map
        (fun s -> (s, Registry.histogram reg ("stage." ^ s)))
        Trace.stage_names;
  }

let assoc_find key arr =
  let n = Array.length arr in
  let rec go i =
    if i >= n then None
    else
      let k, v = arr.(i) in
      if String.equal k key then Some v else go (i + 1)
  in
  go 0

type t = {
  cfg : config;
  cache : Cache.t;
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  tcp_fd : Unix.file_descr option;
  flight : Render.outcome Singleflight.t option;
  stop_flag : bool Atomic.t;
  in_flight : int Atomic.t;
  ins : instruments option;
  started : float;
  mutable accept_dom : unit Domain.t option;
}

let cache t = t.cache
let socket t = t.cfg.socket
let registry t = Option.map (fun i -> i.reg) t.ins

(* The bound TCP port — the bind-time one unless the config asked for an
   ephemeral port (0), in which case the kernel's pick. *)
let tcp_port t =
  match t.tcp_fd with
  | None -> None
  | Some fd -> (
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> Some p
    | _ -> None)

(* ----------------------------- replies ----------------------------- *)

let outcome_json (o : Render.outcome) =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("out", Json.Str o.Render.out);
      ("err", Json.Str o.Render.err);
      ("exit", Json.Num (float_of_int o.Render.code));
      ("cache", Json.Str o.Render.cache_status);
    ]

let error_json msg = Json.Obj [ ("ok", Json.Bool false); ("err", Json.Str msg) ]

let busy_json =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ("busy", Json.Bool true);
      ( "err",
        Json.Str "gmtd: busy: request bound reached, retry or raise --jobs\n"
      );
    ]

(* ----------------------------- requests ---------------------------- *)

let outcome_err ~code msg =
  { Render.out = ""; err = msg; code; cache_status = "none" }

let effective_fuel cfg req_fuel =
  match (req_fuel, cfg.fuel_cap) with
  | Some f, Some cap -> Some (min f cap)
  | Some f, None -> Some f
  | None, cap -> cap

let technique_of_name = function
  | "gremio" -> Some V.Gremio
  | "dswp" -> Some V.Dswp
  | _ -> None

(* The compile ops carry the canonical GMT-IR text; the client already
   resolved names and files, so a parse failure here means a foreign
   client — it gets the same message and exit offline gmtc would give
   for a broken [.gmt] file. [check] defers parsing to
   {!Render.check_text} so a warm request never pays for it; [run] and
   [sweep] simulate and must parse regardless, but still key the cache
   on the received bytes. *)
let compile_request t j payload op =
  let gmt, fuel, kernel =
    Obs.span ~cat:"stage" "req.decode" (fun () ->
        let gmt =
          if payload <> "" then Some payload else Proto.str_field j "gmt"
        in
        let fuel = effective_fuel t.cfg (Proto.int_field j "fuel") in
        (* Engine selection rides along on run/sweep requests; absent
           means the engine default (jit). Replies are byte-identical
           whichever engine runs — the field only exists so clients can
           cross-check. *)
        let kernel =
          match Proto.str_field j "kernel" with
          | None -> Ok None
          | Some name -> (
            match Gmt_machine.Sim.kernel_of_string name with
            | Some k -> Ok (Some k)
            | None ->
              Error
                (outcome_err ~code:Render.exit_unknown
                   (Printf.sprintf
                      "gmtc: unknown kernel %S (known: jit, decoded, \
                       legacy)\n"
                      name)))
        in
        (gmt, fuel, kernel))
  in
  match gmt with
  | None -> outcome_err ~code:Render.exit_parse "gmtc: request lacks GMT-IR\n"
  | Some text -> (
    let parsed () =
      match Text.parse ~file:"<request>" text with
      | Error e ->
        Error
          (outcome_err ~code:Render.exit_parse
             (Printf.sprintf "gmtc: %s\n" (Text.render_error e)))
      | Ok w -> Ok w
    in
    match kernel with
    | Error o -> o
    | Ok kernel -> (
      match op with
      | `Sweep -> (
        match parsed () with
        | Error o -> o
        | Ok w ->
          let max_threads =
            Option.value (Proto.int_field j "max_threads") ~default:4
          in
          Render.sweep ~jobs:1 ?fuel ?kernel ~max_threads w)
      | (`Run | `Check) as op -> (
        let name = Option.value (Proto.str_field j "technique") ~default:"" in
        match technique_of_name name with
        | None ->
          outcome_err ~code:Render.exit_unknown
            (Printf.sprintf
               "gmtc: unknown technique %S (known: gremio, dswp)\n" name)
        | Some technique -> (
          let coco = Option.value (Proto.bool_field j "coco") ~default:false in
          let threads =
            Option.value (Proto.int_field j "threads") ~default:2
          in
          match op with
          | `Check ->
            (* Validation is symbolic; the kernel (already vetted above)
               does not enter the fingerprint or the verdict. *)
            Render.check_text ~cache:t.cache ~technique ~coco ~threads text
          | `Run -> (
            match parsed () with
            | Error o -> o
            | Ok w ->
              Render.run ~cache:t.cache ~canonical:text ~jobs:1 ?fuel ?kernel
                ~technique ~coco ~threads w)))))

let stats_json t =
  let s = Cache.stats t.cache in
  let ps = Pool.stats t.pool in
  (* Racy-but-safe live snapshot (Sched.stats); mirror it into the
     registry gauges so the prometheus/telemetry exposition sees it. *)
  (match (t.ins, ps) with
  | Some ins, Some st ->
    let module S = Gmt_exec.Sched in
    Registry.set_gauge ins.g_pool_tasks st.S.tasks_run;
    Registry.set_gauge ins.g_pool_injected st.S.injected;
    Registry.set_gauge ins.g_pool_steal_att st.S.steals_attempted;
    Registry.set_gauge ins.g_pool_steal_ok st.S.steals_succeeded;
    Registry.set_gauge ins.g_pool_parks st.S.parks;
    Registry.set_gauge ins.g_pool_depth_peak st.S.deque_depth_peak
  | _ -> ());
  let now = Unix.gettimeofday () in
  let n name v = (name, Json.Num (float_of_int v)) in
  let pool_obj =
    match ps with
    | None ->
      (* Inline pool (jobs = 1): no scheduler, all-zero counters. *)
      Json.Obj
        [
          n "workers" 0;
          n "tasks_run" 0;
          n "injected" 0;
          n "steals_attempted" 0;
          n "steals_succeeded" 0;
          n "parks" 0;
          n "deque_depth_peak" 0;
        ]
    | Some st ->
      let module S = Gmt_exec.Sched in
      Json.Obj
        [
          n "workers" st.S.workers;
          n "tasks_run" st.S.tasks_run;
          n "injected" st.S.injected;
          n "steals_attempted" st.S.steals_attempted;
          n "steals_succeeded" st.S.steals_succeeded;
          n "parks" st.S.parks;
          n "deque_depth_peak" st.S.deque_depth_peak;
        ]
  in
  let base =
    [
      ("ok", Json.Bool true);
      ("version", Json.Str Proto.version);
      ("schema", Json.Str "gmtd-stats/2");
      n "jobs" t.cfg.jobs;
      n "in_flight" (Atomic.get t.in_flight);
      ("uptime_s", Json.Num (now -. t.started));
      ( "cache",
        Json.Obj
          [
            n "hits" s.Cache.hits;
            n "misses" s.Cache.misses;
            n "stores" s.Cache.stores;
            n "evictions" s.Cache.evictions;
            n "corrupt" s.Cache.corrupt;
          ] );
      ("pool", pool_obj);
    ]
  in
  let tele =
    match t.ins with
    | None -> [ ("telemetry", Json.Null) ]
    | Some ins ->
      [
        ("telemetry", Registry.json ~now ins.reg);
        ("prometheus", Json.Str (Registry.prometheus ~now ins.reg));
        ("events", Json.Arr (List.map (fun l -> Json.Str l) (Events.recent ())));
      ]
  in
  Json.Obj (base @ tele)

(* Post-compile accounting: one histogram record per request and per
   collected stage span, plus hit/miss/timeout counters and windows.
   Everything here is lock-or-atomic on pre-resolved instruments. *)
let account ins ~name ~t0 ~now (o : Render.outcome) spans =
  Registry.incr ins.c_requests;
  (match assoc_find name ins.op_hists with
  | Some h -> Histogram.record h (int_of_float ((now -. t0) *. 1e6))
  | None -> ());
  List.iter
    (fun (s : Obs.span) ->
      match assoc_find s.Obs.name ins.stage_hists with
      | Some h -> Histogram.record h (int_of_float s.Obs.dur_us)
      | None -> ())
    spans;
  (match o.Render.cache_status with
  | "hit" ->
    Registry.incr ins.c_hits;
    Rolling.add ins.w_hits ~now 1
  | "miss" ->
    Registry.incr ins.c_misses;
    Rolling.add ins.w_misses ~now 1
  | _ -> ());
  if o.Render.code = Render.exit_timeout then begin
    Registry.incr ins.c_timeouts;
    Rolling.add ins.w_timeouts ~now 1;
    Events.emit ~severity:Events.Warn ~kind:"server.fuel_timeout"
      [ ("op", Json.Str name); ("err", Json.Str o.Render.err) ]
  end;
  if o.Render.code <> 0 then Registry.incr ins.c_errors

(* The single-flight key: every request field that enters the outcome,
   plus the program text in both forms it may arrive in — the frame
   payload and the legacy "gmt" JSON field that [compile_request] falls
   back to when the payload is empty. Deliberately NOT the trace id, so
   traced and untraced clients coalesce (each reply still carries its
   own trace id; waiters just ship no server-side spans). *)
let flight_key j payload =
  let b = Buffer.create (String.length payload + 128) in
  List.iter
    (fun k ->
      Buffer.add_string b k;
      Buffer.add_char b '=';
      (match Json.member k j with
      | Some v -> Buffer.add_string b (Json.to_string v)
      | None -> ());
      Buffer.add_char b ';')
    [ "op"; "technique"; "coco"; "threads"; "fuel"; "kernel"; "max_threads";
      "gmt" ];
  Buffer.add_char b '\x00';
  Buffer.add_string b payload;
  Digest.to_hex (Digest.string (Buffer.contents b))

let handle_request t j payload =
  match Proto.str_field j "op" with
  | Some "ping" ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("version", Json.Str Proto.version);
        ("jobs", Json.Num (float_of_int t.cfg.jobs));
      ]
  | Some "stats" -> stats_json t
  | Some "put" -> (
    (* Replication intake: a peer shard pushing a just-compiled entry.
       The attachment is a self-checksummed encoded entry; anything that
       fails to decode is refused (and the pusher's problem). Ingest is
       cold and silent — no hook, no hit/miss accounting — so pushes can
       never cascade or distort the serving stats. *)
    match Proto.str_field j "key" with
    | None -> error_json "gmtd: put lacks a \"key\" field"
    | Some key -> (
      if payload = "" then error_json "gmtd: put lacks an entry attachment"
      else
        match Cache.decode_entry payload with
        | Error reason -> error_json ("gmtd: put rejected: " ^ reason)
        | Ok e ->
          let ingested = Cache.ingest t.cache key e in
          (match t.ins with
          | Some ins when ingested -> Registry.incr ins.c_repl_ingested
          | _ -> ());
          Json.Obj [ ("ok", Json.Bool true); ("ingested", Json.Bool ingested) ]
      ))
  | Some (("run" | "check" | "sweep") as name) ->
    let op =
      match name with
      | "run" -> `Run
      | "check" -> `Check
      | _ -> `Sweep
    in
    let trace_id = Proto.str_field j "trace_id" in
    let t0 = Unix.gettimeofday () in
    (match t.ins with
    | Some ins ->
      Registry.set_gauge ins.g_in_flight (Atomic.get t.in_flight);
      Rolling.add ins.w_in_flight_peak ~now:t0 (Atomic.get t.in_flight);
      if trace_id <> None then Registry.incr ins.c_traced
    | None -> ());
    let serve_args =
      match trace_id with
      | Some id -> [ ("trace_id", Obs.S id) ]
      | None -> []
    in
    (* Single-flight: concurrent requests on one key run the compile
       once. The leader's inner stage spans complete on its own domain
       (so only the leader feeds the stage histograms); a waiter's span
       tree holds just its serve.* wait — its reply is byte-identical to
       the leader's but ships no server-side stage spans. *)
    let compiled () =
      match t.flight with
      | None -> (compile_request t j payload op, `Led)
      | Some sf ->
        Singleflight.run sf (flight_key j payload) (fun () ->
            compile_request t j payload op)
    in
    (* Collect the request's span tree when either consumer wants it:
       the stage histograms (telemetry on) or a traced client. [Render]
       is always called with [~jobs:1], so every inner span completes on
       this domain and lands in the collector. *)
    let ((o, role), reply), spans =
      if t.ins <> None || trace_id <> None then
        Obs.collect (fun () ->
            let res =
              Obs.span ~cat:"service" ~args:serve_args ("serve." ^ name)
                (fun () -> compiled ())
            in
            let reply =
              Obs.span ~cat:"stage" "req.encode" (fun () ->
                  outcome_json (fst res))
            in
            (res, reply))
      else
        let res =
          Obs.span ~cat:"service" ("serve." ^ name) (fun () -> compiled ())
        in
        ((res, outcome_json (fst res)), [])
    in
    let now = Unix.gettimeofday () in
    (match t.ins with
    | Some ins ->
      (* The lead/wait split is a coalescing metric, so it counts only
         coalescing-relevant flights: a lead that was served from the
         cache is an ordinary hit (nothing was deduplicated), and with
         the flight table disabled every request trivially "leads" —
         neither may inflate the counters. What remains makes
         [waits / (leads + waits)] exactly the share of duplicate
         concurrent misses collapsed into an already-running compile. *)
      if t.flight <> None then (
        match role with
        | `Led ->
          if o.Render.cache_status = "miss" then Registry.incr ins.c_sf_leads
        | `Joined -> Registry.incr ins.c_sf_waits);
      (* A waiter shares the leader's outcome verbatim, so its
         cache_status reflects the leader's cache probe, not one of its
         own — counting it would log N misses for one compile and drift
         from [Cache.stats]. The wait itself is already counted above. *)
      let o_acct =
        match role with
        | `Joined -> { o with Render.cache_status = "none" }
        | `Led -> o
      in
      account ins ~name ~t0 ~now o_acct spans
    | None -> ());
    (match (trace_id, reply) with
    | Some id, Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ("trace_id", Json.Str id);
            ("spans", Trace.spans_to_json spans);
          ])
    | _ -> reply)
  | Some op -> error_json (Printf.sprintf "gmtd: unknown op %S" op)
  | None -> error_json "gmtd: request lacks an \"op\" field"

(* --------------------------- connections --------------------------- *)

let send fd j = try Proto.write_frame fd j with Unix.Unix_error _ -> ()

(* One connection may carry any number of requests; the first malformed
   frame is answered with an error and ends the connection (framing is
   lost, so resynchronizing is not possible). *)
let handle_conn t fd =
  let rec loop () =
    match Proto.read_frame fd with
    | Error `Eof -> ()
    | Error (`Malformed msg) ->
      if t.ins <> None then
        Events.emit ~severity:Events.Warn ~kind:"server.malformed"
          [ ("err", Json.Str msg) ];
      send fd (error_json ("gmtd: " ^ msg))
    | Ok (j, payload) ->
      let reply =
        try handle_request t j payload
        with e ->
          let msg = Printexc.to_string e in
          if t.ins <> None then
            Events.emit ~severity:Events.Error ~kind:"server.internal_error"
              [ ("err", Json.Str msg) ];
          error_json ("gmtd: internal error: " ^ msg)
      in
      send fd reply;
      loop ()
  in
  loop ()

(* --------------------------- accept loop --------------------------- *)

(* One ready listener: accept, admit or shed, dispatch. Identical for
   the Unix-domain and TCP listeners — the protocol upward never cares
   which transport a connection arrived on. *)
let accept_one t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
    if Atomic.get t.stop_flag then (try Unix.close fd with _ -> ())
    else if Atomic.fetch_and_add t.in_flight 1 >= t.cfg.queue_bound then begin
      (* Over the bound: an explicit busy reply, never a hang. *)
      Atomic.decr t.in_flight;
      (match t.ins with
      | Some ins ->
        Registry.incr ins.c_busy;
        Rolling.add ins.w_busy ~now:(Unix.gettimeofday ()) 1;
        Events.emit ~severity:Events.Warn ~kind:"server.busy"
          [
            ("in_flight", Json.Num (float_of_int (Atomic.get t.in_flight)));
            ("queue_bound", Json.Num (float_of_int t.cfg.queue_bound));
          ]
      | None -> ());
      send fd busy_json;
      try Unix.close fd with _ -> ()
    end
    else
      ignore
        (Pool.submit t.pool (fun () ->
             Fun.protect
               ~finally:(fun () ->
                 (try Unix.close fd with _ -> ());
                 Atomic.decr t.in_flight;
                 match t.ins with
                 | Some ins ->
                   Registry.set_gauge ins.g_in_flight (Atomic.get t.in_flight)
                 | None -> ())
               (fun () -> handle_conn t fd)))

let accept_loop t =
  let listeners =
    t.listen_fd :: (match t.tcp_fd with Some fd -> [ fd ] | None -> [])
  in
  let rec go () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select listeners [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ -> List.iter (accept_one t) ready);
      go ()
    end
  in
  go ();
  List.iter (fun fd -> try Unix.close fd with _ -> ()) listeners;
  try Unix.unlink t.cfg.socket with _ -> ()

(* ---------------------------- lifecycle ---------------------------- *)

let start cfg =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Latency over memory: every request churns frame-sized (hundreds of
     KB) short-lived blocks while the live heap — suite, pool, artifact
     cache — stays small, so the default pacer finishes a full major
     cycle every couple of requests and its stop-the-world phases
     dominate warm (cache-hit) latency. A high space overhead makes
     major cycles rare; the LRU bounds how far the live set can grow. *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 800 };
  let cache = Cache.create ~mem_capacity:cfg.mem_capacity ?dir:cfg.cache_dir ()
  in
  (* Request handlers block — in read_frame on a slow client, and on
     the single-flight condvar while joining a leader's compile — so
     the pool runs in blocking mode: all [jobs] workers active whatever
     the core count, one task per grab, a wake per submit. With the
     CPU-bound defaults a 1-core box would serialize requests and
     coalescing could never trigger. *)
  let pool = Pool.create ~blocking:true ~jobs:(max 1 cfg.jobs) () in
  (* A stale socket file from a crashed daemon would make bind fail;
     replace it. A live daemon on the same path loses its socket — the
     operator picked the path, so last-started wins. *)
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  (* The TCP listener (the farm transport) rides alongside the Unix
     socket; port 0 asks the kernel for an ephemeral port, read back
     through [tcp_port]. *)
  let tcp_fd =
    match cfg.tcp with
    | None -> None
    | Some (host, port) ->
      let addr =
        match
          Unix.getaddrinfo host (string_of_int port)
            [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_PASSIVE ]
        with
        | ai :: _ -> ai.Unix.ai_addr
        | [] -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
      in
      let fd =
        Unix.socket ~cloexec:true
          (Unix.domain_of_sockaddr addr)
          Unix.SOCK_STREAM 0
      in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd addr;
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with _ -> ());
         (try Unix.close listen_fd with _ -> ());
         raise e);
      Some fd
  in
  let ins = if cfg.telemetry then Some (make_instruments ()) else None in
  let t =
    {
      cfg;
      cache;
      pool;
      listen_fd;
      tcp_fd;
      flight = (if cfg.coalesce then Some (Singleflight.create ()) else None);
      stop_flag = Atomic.make false;
      in_flight = Atomic.make 0;
      ins;
      started = Unix.gettimeofday ();
      accept_dom = None;
    }
  in
  if cfg.telemetry then
    Events.emit ~kind:"server.start"
      [
        ("socket", Json.Str cfg.socket);
        ( "listen",
          match cfg.tcp with
          | None -> Json.Null
          | Some (h, _) -> (
            match tcp_port t with
            | Some p -> Json.Str (Printf.sprintf "%s:%d" h p)
            | None -> Json.Null) );
        ("jobs", Json.Num (float_of_int cfg.jobs));
      ];
  t.accept_dom <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let request_stop t = Atomic.set t.stop_flag true

let join t =
  (match t.accept_dom with
  | Some d ->
    if t.ins <> None then
      Events.emit ~kind:"server.drain"
        [ ("in_flight", Json.Num (float_of_int (Atomic.get t.in_flight))) ];
    Domain.join d;
    t.accept_dom <- None
  | None -> ());
  Pool.shutdown t.pool;
  if t.ins <> None then Events.emit ~kind:"server.stop" []

let stop t =
  request_stop t;
  join t
