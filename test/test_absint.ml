(* The abstract-interpretation framework: interval-domain soundness
   against the concrete [Instr.eval_*] semantics, lattice laws the
   engine relies on (widening covers join and stabilizes, narrowing
   stays bracketed), fixpoint convergence in a linear number of block
   steps on random structured programs, and end-to-end soundness of the
   lint/memory-disambiguation clients under the checking interpreter. *)

open Gmt_ir
module Itv = Gmt_analysis.Itv
module Absenv = Gmt_analysis.Absenv
module Memdis = Gmt_analysis.Memdis
module G = Gmt_frontend.Gen
module Fuzz = Gmt_frontend.Fuzz

let all_binops =
  [
    Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
    Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr; Instr.Lt; Instr.Le;
    Instr.Eq; Instr.Ne; Instr.Gt; Instr.Ge; Instr.Min; Instr.Max;
    Instr.Fadd; Instr.Fsub; Instr.Fmul; Instr.Fdiv; Instr.Fmin;
    Instr.Fmax;
  ]

let all_unops = [ Instr.Neg; Instr.Not; Instr.Abs; Instr.Fneg; Instr.Fsqrt ]

(* ----------------------- interval generators ---------------------- *)

(* Mostly-small points with a tail of large magnitudes and the exact
   overflow/mask corner cases the transfer functions special-case. *)
let gen_point =
  QCheck.Gen.(
    frequency
      [
        (6, int_range (-256) 256);
        (2, int_range (-1_000_000) 1_000_000);
        ( 1,
          oneofl
            [ min_int; min_int + 1; max_int - 1; max_int; 0; 1; -1; 63; 64 ]
        );
      ])

(* An interval generated together with one of its members, so that
   membership holds by construction and soundness can be tested by
   sampling. *)
let gen_itv_point =
  QCheck.Gen.(
    gen_point >>= fun p ->
    let lo =
      frequency
        [
          (1, return Itv.Ninf);
          ( 4,
            int_range 0 300 >|= fun d ->
            Itv.Fin (if p < min_int + d then min_int else p - d) );
        ]
    and hi =
      frequency
        [
          (1, return Itv.Pinf);
          ( 4,
            int_range 0 300 >|= fun d ->
            Itv.Fin (if p > max_int - d then max_int else p + d) );
        ]
    in
    pair lo hi >|= fun (lo, hi) -> (Itv.make lo hi, p))

let print_itv_point (i, p) = Printf.sprintf "%d \xe2\x88\x88 %s" p (Itv.to_string i)

let arb_binop_case =
  QCheck.make
    ~print:(fun (op, a, b) ->
      Printf.sprintf "%s (%s) (%s)" (Instr.binop_name op) (print_itv_point a)
        (print_itv_point b))
    QCheck.Gen.(triple (oneofl all_binops) gen_itv_point gen_itv_point)

let arb_unop_case =
  QCheck.make
    ~print:(fun (op, a) ->
      Printf.sprintf "%s (%s)" (Instr.unop_name op) (print_itv_point a))
    QCheck.Gen.(pair (oneofl all_unops) gen_itv_point)

let arb_itv_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "%s / %s" (print_itv_point a) (print_itv_point b))
    QCheck.Gen.(pair gen_itv_point gen_itv_point)

(* ------------------------ transfer soundness ---------------------- *)

let prop_binop_sound =
  QCheck.Test.make ~count:2000
    ~name:"Itv.binop over-approximates eval_binop on members"
    arb_binop_case
    (fun (op, (ia, x), (ib, y)) ->
      Itv.mem (Instr.eval_binop op x y) (Itv.binop op ia ib))

let prop_unop_sound =
  QCheck.Test.make ~count:1000
    ~name:"Itv.unop over-approximates eval_unop on members" arb_unop_case
    (fun (op, (ia, x)) -> Itv.mem (Instr.eval_unop op x) (Itv.unop op ia))

let prop_binop_monotone =
  QCheck.Test.make ~count:1000
    ~name:"Itv.binop is monotone (wider inputs, wider output)"
    QCheck.Gen.(
      QCheck.make
        (quad (oneofl all_binops) gen_itv_point gen_itv_point gen_itv_point))
    (fun (op, (a, _), (b, _), (c, _)) ->
      Itv.subset (Itv.binop op a b) (Itv.binop op (Itv.join a c) b)
      && Itv.subset (Itv.binop op a b) (Itv.binop op a (Itv.join b c)))

(* ------------------------- lattice laws --------------------------- *)

let prop_lattice_membership =
  QCheck.Test.make ~count:1000
    ~name:"join/meet/widen/narrow respect membership" arb_itv_pair
    (fun ((a, x), (b, y)) ->
      Itv.mem x (Itv.join a b)
      && Itv.mem y (Itv.join a b)
      && Itv.mem x (Itv.widen a b)
      && Itv.mem y (Itv.widen a b)
      && ((not (Itv.mem x b)) || Itv.mem x (Itv.meet a b))
      && ((not (Itv.mem x b)) || Itv.mem x (Itv.narrow a b))
      && Itv.subset (Itv.narrow a b) a
      && Itv.subset a (Itv.widen a b))

(* Interval widening has a bounded chain: each endpoint can only jump to
   its infinity, so any widening sequence strictly grows at most a
   handful of times no matter how adversarial the inputs. This is the
   property the engine's termination rests on. *)
let prop_widen_stabilizes =
  QCheck.Test.make ~count:500 ~name:"widening chains stabilize in <= 4 steps"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) gen_itv_point))
    (fun steps ->
      let changes = ref 0 in
      let _ =
        List.fold_left
          (fun acc (next, _) ->
            let w = Itv.widen acc next in
            if not (Itv.equal w acc) then incr changes;
            w)
          Itv.bot steps
      in
      !changes <= 4)

(* --------------------- engine on a counted loop ------------------- *)

(* for (i = 0; i < 10; i++): the branch refinement must bound the
   counter inside the loop and pin it to exactly 10 at the exit, after
   widening blew the head state to [0, +inf] and narrowing clawed the
   bound back. *)
let counted_loop () =
  let b = Builder.create ~name:"counted" () in
  let i = Builder.reg b in
  let one = Builder.reg b and ten = Builder.reg b and c = Builder.reg b in
  let b0 = Builder.block b in
  let head = Builder.block b in
  let body = Builder.block b in
  let exit = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (i, 0)));
  ignore (Builder.add b b0 (Instr.Const (one, 1)));
  ignore (Builder.add b b0 (Instr.Const (ten, 10)));
  ignore (Builder.terminate b b0 (Instr.Jump head));
  ignore (Builder.add b head (Instr.Binop (Instr.Lt, c, i, ten)));
  ignore (Builder.terminate b head (Instr.Branch (c, body, exit)));
  let incr_i = Builder.add b body (Instr.Binop (Instr.Add, i, i, one)) in
  ignore (Builder.terminate b body (Instr.Jump head));
  ignore (Builder.terminate b exit Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[ i ] in
  (f, i, incr_i.Instr.id, body, exit)

let itv_in r lbl reg = (Absenv.reg (Absenv.Engine.block_in r lbl) reg).Absenv.itv

let test_counted_loop_bounds () =
  let f, i, incr_id, body, exit = counted_loop () in
  let r = Absenv.analyze f in
  Alcotest.(check string)
    "i bounded in the body" "[0, 9]"
    (Itv.to_string (itv_in r body i));
  Alcotest.(check string)
    "i pinned at the exit" "[10, 10]"
    (Itv.to_string (itv_in r exit i));
  let after = (Absenv.reg (Absenv.Engine.after r incr_id) i).Absenv.itv in
  Alcotest.(check bool)
    "increment lands in [1, 10]" true
    (Itv.subset after (Itv.range 1 10));
  Alcotest.(check bool)
    "solver reports nodes and steps" true
    (Absenv.Engine.n_nodes r = 4 && Absenv.Engine.iterations r > 0)

(* Convergence: the widening/narrowing schedule solves random structured
   programs (nested loops, hammocks) in a number of block steps linear
   in the CFG, i.e. the worklist never thrashes. *)
let prop_converges_linearly =
  QCheck.Test.make ~count:100
    ~name:"absenv fixpoint converges in O(blocks) steps"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000))
    (fun seed ->
      let f = G.lower (G.gen ~seed) in
      let r = Absenv.analyze f in
      Absenv.Engine.iterations r <= (60 * Absenv.Engine.n_nodes r) + 200)

(* ------------------- memory disambiguation unit ------------------- *)

(* Two stores, both through an unknown live-in base: the affine-symbol
   rule must separate distinct constant offsets off the same base (the
   mask preserves congruence mod a power-of-two memory size) and must
   NOT separate the same offset. *)
let sym_stores off2 =
  let b = Builder.create ~name:"md-sym" () in
  let x = Builder.reg b in
  let v = Builder.reg b in
  let m = Builder.region b "m" in
  let b0 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (v, 1)));
  let s1 = Builder.add b b0 (Instr.Store (m, x, 0, v)) in
  let s2 = Builder.add b b0 (Instr.Store (m, x, off2, v)) in
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[ x ] ~live_out:[] in
  (Memdis.analyze ~mem_size:1024 f, s1.Instr.id, s2.Instr.id)

let const_stores a1 a2 =
  let b = Builder.create ~name:"md-itv" () in
  let r1 = Builder.reg b and r2 = Builder.reg b and v = Builder.reg b in
  let m = Builder.region b "m" in
  let b0 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (v, 1)));
  ignore (Builder.add b b0 (Instr.Const (r1, a1)));
  ignore (Builder.add b b0 (Instr.Const (r2, a2)));
  let s1 = Builder.add b b0 (Instr.Store (m, r1, 0, v)) in
  let s2 = Builder.add b b0 (Instr.Store (m, r2, 0, v)) in
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[] in
  (Memdis.analyze ~mem_size:1024 f, s1.Instr.id, s2.Instr.id)

let test_memdis_rules () =
  let d, s1, s2 = sym_stores 1 in
  Alcotest.(check bool) "x+0 vs x+1 disjoint" true (Memdis.disjoint d s1 s2);
  Alcotest.(check bool) "symmetric" true (Memdis.disjoint d s2 s1);
  let d, s1, s2 = sym_stores 0 in
  Alcotest.(check bool) "x+0 vs x+0 not disjoint" false
    (Memdis.disjoint d s1 s2);
  let d, s1, s2 = const_stores 5 9 in
  Alcotest.(check bool) "5 vs 9 disjoint" true (Memdis.disjoint d s1 s2);
  let d, s1, s2 = const_stores 5 5 in
  Alcotest.(check bool) "5 vs 5 not disjoint" false (Memdis.disjoint d s1 s2);
  (* 2000 is out of [0, 1024): masking can fold it onto 2000 & 1023 =
     976, so the interval rule must refuse pre-mask reasoning. *)
  let d, s1, s2 = const_stores 976 2000 in
  Alcotest.(check bool) "masked collision kept" false
    (Memdis.disjoint d s1 s2);
  Alcotest.(check bool) "unknown ids conservative" false
    (Memdis.disjoint d 999_999 0)

(* ------------------- client soundness, end to end ----------------- *)

(* Random generated programs through the full obligation set of
   [gmtc fuzz --lint]: a checking-interpreter trap must be covered by a
   finding, every traced address must lie in its abstract interval, and
   "disjoint" pairs must never share a dynamic address. *)
let prop_clients_sound =
  QCheck.Test.make ~count:60
    ~name:"lint + memdis sound under the checking interpreter"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000))
    (fun seed ->
      match Fuzz.lint_soundness (G.workload (G.gen ~seed)) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "seed %d: %s" seed e)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_binop_sound;
    QCheck_alcotest.to_alcotest prop_unop_sound;
    QCheck_alcotest.to_alcotest prop_binop_monotone;
    QCheck_alcotest.to_alcotest prop_lattice_membership;
    QCheck_alcotest.to_alcotest prop_widen_stabilizes;
    Alcotest.test_case "counted loop bounds" `Quick test_counted_loop_bounds;
    QCheck_alcotest.to_alcotest prop_converges_linearly;
    Alcotest.test_case "memdis interval + symbol rules" `Quick
      test_memdis_rules;
    QCheck_alcotest.to_alcotest prop_clients_sound;
  ]
