(** Thread-aware safety analysis (Property 3, data-flow equations (1)-(2)).

    A register [r] is {e safe} to communicate from thread [Ts] at a point
    when [Ts] is guaranteed to hold the latest value of [r] there: [Ts]
    defined or used [r] since any other thread's definition. Forward
    must-analysis; the entry boundary is empty, as in the paper. *)

open Gmt_ir

type t

val compute : Func.t -> Gmt_sched.Partition.t -> thread:int -> t

(** Safe register set at the point before / after instruction [id]. *)
val safe_before : t -> int -> Reg.Set.t

val safe_after : t -> int -> Reg.Set.t

(** Safe set at a block's entry. *)
val safe_at_entry : t -> Instr.label -> Reg.Set.t

val is_safe_before : t -> int -> Reg.t -> bool
val is_safe_after : t -> int -> Reg.t -> bool
