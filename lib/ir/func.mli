(** Functions: a CFG plus the metadata passes need. *)

type t = {
  name : string;
  cfg : Cfg.t;
  n_regs : int;            (** registers are [r0 .. r_{n_regs-1}] *)
  regions : string array;  (** memory-region names; index = region id *)
  live_in : Reg.t list;    (** registers holding inputs at entry *)
  live_out : Reg.t list;   (** registers observable after [Return] *)
}

val make :
  name:string ->
  cfg:Cfg.t ->
  n_regs:int ->
  regions:string array ->
  live_in:Reg.t list ->
  live_out:Reg.t list ->
  t

val n_regions : t -> int
val region_name : t -> Instr.region -> string
