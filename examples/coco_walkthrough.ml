(* A guided tour of the paper's worked examples.

   Figure 3: a register defined on two paths and consumed in another
   thread — MTCG communicates at both definitions and replicates two
   branches; COCO's min-cut moves the single communication to the join.

   Figure 4: a value produced inside a loop but consumed only after it —
   MTCG communicates every iteration and drags the whole loop into the
   consumer thread; COCO communicates once, after the loop, and the
   consumer thread loses the loop entirely.

   Run with: dune exec examples/coco_walkthrough.exe *)

open Gmt_ir
module Pdg = Gmt_pdg.Pdg
module Partition = Gmt_sched.Partition
module Mtcg = Gmt_mtcg.Mtcg
module Comm = Gmt_mtcg.Comm
module Coco = Gmt_coco.Coco
module Interp = Gmt_machine.Interp
module Mt_interp = Gmt_machine.Mt_interp

let mem_size = 1024

let partition_all func ~lone =
  let pairs = ref [] in
  Cfg.iter_instrs func.Func.cfg (fun _ (i : Instr.t) ->
      if not (Instr.is_structural i) then
        pairs := (i.Instr.id, if List.mem i.Instr.id lone then 1 else 0) :: !pairs);
  Partition.make ~n_threads:2 !pairs

let dyn_comm mtp ~init_regs =
  let r = Mt_interp.run ~init_regs mtp ~queue_capacity:4 ~mem_size in
  assert (not r.Mt_interp.deadlocked);
  Mt_interp.total_comm r

let show_plan title plan =
  Printf.printf "%s (%d transfers):\n" title (List.length plan.Mtcg.comms);
  List.iter
    (fun c -> Format.printf "    %a@." Comm.pp c)
    plan.Mtcg.comms

let compare_plans func pdg partition ~init_regs =
  let profile =
    (Interp.run ~init_regs func ~mem_size).Interp.profile
  in
  let base_plan = Mtcg.baseline_plan pdg partition in
  let coco_plan, _ = Coco.optimize pdg partition profile in
  show_plan "  MTCG placement" base_plan;
  show_plan "  COCO placement" coco_plan;
  let base = Mtcg.generate pdg partition base_plan in
  let coco = Mtcg.generate pdg partition coco_plan in
  Printf.printf "  dynamic communication instructions: MTCG %d -> COCO %d\n"
    (dyn_comm base ~init_regs) (dyn_comm coco ~init_regs);
  (base, coco)

(* --------------------------- Figure 3 --------------------------- *)

let fig3 () =
  print_endline "=== Figure 3: two definitions, one consumer ===";
  let b = Builder.create ~name:"fig3" () in
  let r0 = Builder.reg b in
  (* branch input 1 *)
  let r1 = Builder.reg b in
  (* branch input 2 *)
  let r2 = Builder.reg b in
  (* the communicated value *)
  let r3 = Builder.reg b in
  let addr = Builder.reg b in
  let out = Builder.region b "out" in
  let out2 = Builder.region b "out2" in
  let b0 = Builder.block b in
  let b1 = Builder.block b in
  let b2 = Builder.block b in
  let b3 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (r2, 5)));
  (* A *)
  ignore (Builder.terminate b b0 (Instr.Branch (r0, b1, b2)));
  (* B *)
  ignore (Builder.add b b1 (Instr.Binop (Instr.Add, r3, r1, r1)));
  (* C *)
  ignore (Builder.terminate b b1 (Instr.Branch (r1, b2, b3)));
  (* D *)
  ignore (Builder.add b b3 (Instr.Const (r2, 7)));
  (* E *)
  ignore (Builder.terminate b b3 (Instr.Jump b2));
  let f_store = Builder.add b b2 (Instr.Store (out, addr, 0, r2)) in
  (* F *)
  ignore (Builder.add b b2 (Instr.Store (out2, addr, 1, r3)));
  (* G *)
  ignore (Builder.terminate b b2 Instr.Return);
  let func = Builder.finish b ~live_in:[ r0; r1; addr ] ~live_out:[] in
  Format.printf "%a@." Printer.pp_func func;
  let pdg = Pdg.build func in
  Printf.printf "\nPDG (note the transitive control arcs into F):\n";
  Format.printf "%a@." Pdg.pp pdg;
  let partition = partition_all func ~lone:[ f_store.Instr.id ] in
  Printf.printf "\npartition: thread 2 holds only F (the store of r2)\n";
  let init_regs = [ (r0, 1); (r1, 0); (addr, 100) ] in
  ignore (compare_plans func pdg partition ~init_regs);
  print_endline
    "  -> COCO found the single communication point at the join's entry,\n\
    \     making branches B and D irrelevant to thread 2.\n"

(* --------------------------- Figure 4 --------------------------- *)

let fig4 () =
  print_endline "=== Figure 4: loop live-out consumed once ===";
  let b = Builder.create ~name:"fig4" () in
  let r1 = Builder.reg b and r6 = Builder.reg b and r9 = Builder.reg b in
  let tmp = Builder.reg b and lim = Builder.reg b in
  let two = Builder.reg b and one = Builder.reg b in
  let out = Builder.region b "out" in
  let b0 = Builder.block b in
  let b1 = Builder.block b in
  let b2 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (r9, 0)));
  ignore (Builder.add b b0 (Instr.Const (two, 2)));
  ignore (Builder.add b b0 (Instr.Const (one, 1)));
  ignore (Builder.add b b0 (Instr.Const (lim, 10)));
  ignore (Builder.terminate b b0 (Instr.Jump b1));
  ignore (Builder.add b b1 (Instr.Binop (Instr.Mul, r1, r9, two)));
  (* B: the value *)
  ignore (Builder.add b b1 (Instr.Binop (Instr.Add, r9, r9, one)));
  ignore (Builder.add b b1 (Instr.Binop (Instr.Lt, tmp, r9, lim)));
  ignore (Builder.terminate b b1 (Instr.Branch (tmp, b1, b2)));
  (* C *)
  let e = Builder.add b b2 (Instr.Store (out, r6, 0, r1)) in
  (* E: consumer *)
  ignore (Builder.terminate b b2 Instr.Return);
  let func = Builder.finish b ~live_in:[ r6 ] ~live_out:[] in
  Format.printf "%a@." Printer.pp_func func;
  let pdg = Pdg.build func in
  let partition = partition_all func ~lone:[ e.Instr.id ] in
  Printf.printf "\npartition: thread 2 holds only E (the post-loop consumer)\n";
  let init_regs = [ (r6, 200) ] in
  let base, coco = compare_plans func pdg partition ~init_regs in
  let has_branch (f : Func.t) =
    List.exists Instr.is_branch (Cfg.instrs f.Func.cfg)
  in
  Printf.printf
    "  consumer thread contains a loop branch?  MTCG: %b   COCO: %b\n"
    (has_branch base.Mtprog.threads.(1))
    (has_branch coco.Mtprog.threads.(1));
  print_endline
    "  -> with COCO the consumer thread is loop-free: the paper's ks case,\n\
    \     where 73.7% of dynamic communication disappeared.\n"

let () =
  fig3 ();
  fig4 ()
