module Obs = Gmt_obs.Obs
module Json = Gmt_obs.Json

let seq = Atomic.make 0

(* Uniqueness, not unpredictability: pid + wall clock + a process-wide
   sequence number, digested so ids look uniform. *)
let genid () =
  let raw =
    Printf.sprintf "%d-%.9f-%d" (Unix.getpid ()) (Unix.gettimeofday ())
      (Atomic.fetch_and_add seq 1)
  in
  String.sub (Digest.to_hex (Digest.string raw)) 0 16

let stage_names =
  [|
    "req.decode"; "req.fingerprint"; "req.cache.lookup"; "req.compile";
    "req.verify"; "req.simulate"; "req.encode";
  |]

let arg_to_json = function
  | Obs.I i -> Json.Num (float_of_int i)
  | Obs.S s -> Json.Str s

let arg_of_json = function
  | Json.Num f -> Some (Obs.I (int_of_float f))
  | Json.Str s -> Some (Obs.S s)
  | _ -> None

let span_to_json (s : Obs.span) =
  Json.Obj
    [
      ("name", Json.Str s.Obs.name);
      ("cat", Json.Str s.Obs.cat);
      ("ts_us", Json.Num s.Obs.ts_us);
      ("dur_us", Json.Num s.Obs.dur_us);
      ("alloc_bytes", Json.Num s.Obs.alloc_bytes);
      ("domain", Json.Num (float_of_int s.Obs.domain));
      ( "args",
        Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) s.Obs.args) );
    ]

let span_of_json j =
  match
    ( Json.member "name" j,
      Json.member "cat" j,
      Json.member "ts_us" j,
      Json.member "dur_us" j )
  with
  | Some (Json.Str name), Some (Json.Str cat), Some (Json.Num ts_us),
    Some (Json.Num dur_us) ->
    let alloc_bytes =
      match Json.member "alloc_bytes" j with Some (Json.Num f) -> f | _ -> 0.0
    in
    let domain =
      match Json.member "domain" j with
      | Some (Json.Num f) -> int_of_float f
      | _ -> 0
    in
    let args =
      match Json.member "args" j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun a -> (k, a)) (arg_of_json v))
          fields
      | _ -> []
    in
    Some { Obs.name; cat; ts_us; dur_us; alloc_bytes; domain; args }
  | _ -> None

let spans_to_json spans = Json.Arr (List.map span_to_json spans)

let spans_of_json = function
  | Json.Arr vs -> List.filter_map span_of_json vs
  | _ -> []
