(** Flow-graph construction for communication placement (Sections
    3.1.1–3.1.3).

    The graph [G_f] is the CFG at instruction granularity: one node per
    instruction (restricted to the target-thread live range of the
    register, for register problems), one node per basic-block entry, and
    the special source/sink nodes. Normal arcs carry profile-weight costs
    and are annotated with the program point cutting them corresponds to;
    arcs where placement would violate Safety (Property 3) or source-
    thread relevance (Property 2) cost infinity, and arcs whose point
    would make currently-irrelevant branches relevant to the target thread
    carry those branches' weights as a penalty (Section 3.1.2). *)

open Gmt_ir
module Comm = Gmt_mtcg.Comm

(** The common inputs of a placement problem for the thread pair
    [(src_thread, dst_thread)]. *)
type ctx = {
  func : Func.t;
  cd : Gmt_analysis.Controldep.t;
  profile : Gmt_analysis.Profile.t;
  partition : Gmt_sched.Partition.t;
  rel : Gmt_mtcg.Relevant.t;  (** current relevant sets (Algorithm 2 state) *)
  src_thread : int;
  dst_thread : int;
  control_penalty : bool;  (** apply Section 3.1.2 penalties (default on) *)
}

type cut_result = {
  points : Comm.point list;  (** program points to place communication at *)
  cost : int;                (** cut cost (profile-weighted) *)
  finite : bool;             (** false when only infinite cuts exist *)
}

(** Optimal register communication placement for [reg] (min-cut). Returns
    [finite = false] — with the baseline fallback points — if no finite
    cut exists (which indicates a modelling bug; tests assert it never
    happens). Returns an empty point list when the register needs no
    communication (no live definition reaches a target use). *)
val solve_register :
  ctx ->
  reg:Reg.t ->
  safety:Safety.t ->
  tlive:Thread_live.t ->
  cut_result

(** Heuristic multi-commodity placement for all memory dependences
    [pairs = (src_instr, dst_instr) list] from [src_thread] to
    [dst_thread] (successive single-pair min-cuts with arc removal). *)
val solve_memory : ctx -> pairs:(int * int) list -> cut_result
