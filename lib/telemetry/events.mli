(** Structured JSONL event log: severity, sampling, bounded ring.

    Every event renders as one JSON line
    [{"ts": …, "severity": "warn", "kind": "cache.corrupt", …fields}]
    and lands in a bounded in-process ring buffer (oldest dropped
    first); an optional sink additionally receives each kept line the
    moment it is emitted — the daemon points it at stderr so degraded
    states (evictions, corrupt-entry recoveries, fallbacks, drain) are
    visible in the log, not just in post-mortem queries.

    {2 Sampling}

    High-rate [Debug]/[Info] kinds can be decimated with
    {!set_sample_every}: after the first occurrence, only every Nth
    event of a kind is kept. [Warn] and [Error] events are never
    sampled away. {!emitted} always counts every emission of a kind,
    kept or not, so rates stay measurable under sampling.

    State is process-global (like {!Gmt_obs.Obs}); {!reset} restores
    defaults between tests. *)

type severity = Debug | Info | Warn | Error

val severity_name : severity -> string

(** [emit ~kind fields] — record one event, default severity [Info].
    Fields are appended to the rendered object after [ts], [severity]
    and [kind]; field order is preserved. *)
val emit :
  ?severity:severity -> kind:string -> (string * Gmt_obs.Json.t) list -> unit

(** Keep 1 in [n] [Debug]/[Info] events per kind ([1] = keep all, the
    default). Values [< 1] clamp to 1. *)
val set_sample_every : int -> unit

(** Ring capacity (default 256). Resizing clears the ring. *)
val set_capacity : int -> unit

(** Kept lines, oldest first. Each parses as one JSON object. *)
val recent : unit -> string list

(** Total emissions of a kind, before sampling. *)
val emitted : kind:string -> int

(** Sink for kept lines (e.g. [prerr_endline]); [None] disables. *)
val set_sink : (string -> unit) option -> unit

(** Drop all events and counters, restore default capacity/sampling,
    disable the sink. *)
val reset : unit -> unit
