open Gmt_ir

(* Per-cycle attribution buckets: every (core, cycle) falls into exactly
   one, so each row of [stall_attr] sums to [cycles]. The codes double as
   the step functions' return value; the outer loop does one array
   increment per core per cycle, keeping the hot-loop cost flat. *)
let bucket_busy = 0
let bucket_latency = 1
let bucket_consume_empty = 2
let bucket_produce_full = 3
let bucket_ports = 4
let bucket_done = 5

let stall_labels =
  [| "busy"; "latency"; "consume_empty"; "produce_full"; "ports"; "done" |]

let n_stall_buckets = Array.length stall_labels

(* Which per-core stat counter a blocked issue attempt charged — recorded
   by the jit kernel so the idle fast-forward can bulk-replay frozen
   cycles (see [Sim]) without re-running the guards. *)
let stat_none = 0
let stat_data = 1
let stat_queue = 2
let stat_ports = 3

(* reg_ready value marking a consume that has issued but whose datum has
   not yet been produced. *)
let pending_mark = max_int / 2

(* One synchronization-array queue: a fixed ring of produced entries
   (bounded by the queue capacity — the produce guard never lets
   [logical_occupancy] reach past it) plus a growable ring of consumers
   that issued against an empty queue (stall-on-use). Rings instead of
   [Queue.t] so the issue loops allocate nothing per produce/consume. *)
type queue_state = {
  entry_value : int array;
  entry_ready : int array;
  mutable e_head : int;
  mutable e_len : int;
  mutable waiter_core : int array;
  mutable waiter_dst : int array; (* destination register, or -1 = sync *)
  mutable w_head : int;
  mutable w_len : int;
  mutable logical_occupancy : int;
      (* entries + produced-but-delivered slots; bounded by capacity *)
}

let make_queue ~capacity =
  let cap = max 1 capacity in
  {
    entry_value = Array.make cap 0;
    entry_ready = Array.make cap 0;
    e_head = 0;
    e_len = 0;
    waiter_core = Array.make 4 0;
    waiter_dst = Array.make 4 0;
    w_head = 0;
    w_len = 0;
    logical_occupancy = 0;
  }

let entry_push qs ~value ~ready =
  let cap = Array.length qs.entry_value in
  let tail = qs.e_head + qs.e_len in
  let tail = if tail >= cap then tail - cap else tail in
  qs.entry_value.(tail) <- value;
  qs.entry_ready.(tail) <- ready;
  qs.e_len <- qs.e_len + 1

let entry_head_value qs = qs.entry_value.(qs.e_head)
let entry_head_ready qs = qs.entry_ready.(qs.e_head)

let entry_drop qs =
  let h = qs.e_head + 1 in
  qs.e_head <- (if h >= Array.length qs.entry_value then 0 else h);
  qs.e_len <- qs.e_len - 1

let waiter_push qs ~core ~dst =
  let cap = Array.length qs.waiter_core in
  if qs.w_len = cap then begin
    (* Grow by doubling; waiters are bounded by cores x registers, so
       growth is rare and amortizes to nothing. *)
    let wc = Array.make (2 * cap) 0 and wd = Array.make (2 * cap) 0 in
    for k = 0 to qs.w_len - 1 do
      let i = qs.w_head + k in
      let i = if i >= cap then i - cap else i in
      wc.(k) <- qs.waiter_core.(i);
      wd.(k) <- qs.waiter_dst.(i)
    done;
    qs.waiter_core <- wc;
    qs.waiter_dst <- wd;
    qs.w_head <- 0
  end;
  let cap = Array.length qs.waiter_core in
  let tail = qs.w_head + qs.w_len in
  let tail = if tail >= cap then tail - cap else tail in
  qs.waiter_core.(tail) <- core;
  qs.waiter_dst.(tail) <- dst;
  qs.w_len <- qs.w_len + 1

let waiter_head_core qs = qs.waiter_core.(qs.w_head)
let waiter_head_dst qs = qs.waiter_dst.(qs.w_head)

let waiter_drop qs =
  let h = qs.w_head + 1 in
  qs.w_head <- (if h >= Array.length qs.waiter_core then 0 else h);
  qs.w_len <- qs.w_len - 1

(* FIFO-order iteration, oldest waiter first (deadlock reporting). *)
let waiter_iter f qs =
  let cap = Array.length qs.waiter_core in
  for k = 0 to qs.w_len - 1 do
    let i = qs.w_head + k in
    let i = if i >= cap then i - cap else i in
    f ~core:qs.waiter_core.(i) ~dst:qs.waiter_dst.(i)
  done

type core = {
  func : Func.t;
  regs : int array;
  reg_ready : int array;
  mutable pc : int; (* decoded/jit kernels: index into flat code *)
  mutable finished : bool;
  mutable finish_cycle : int;
  l1 : Cache.t;
  l2 : Cache.t;
  (* acquire-fence state *)
  mutable outstanding_syncs : int;
  mutable fence_ready : int;
  (* jit kernel per-cycle issue-group scratch: per-class slots consumed
     (indexed Calu=0, Cfp=1, Cmem=2, Cbr=3, Cnone=4) and instructions
     issued this cycle. Preallocated once; reset by the step function. *)
  k_cnt : int array;
  mutable k_issued : int;
  (* jit idle fast-forward metadata, written by a blocking closure: the
     first cycle at which re-evaluating its guard could change outcome
     ([max_int] = only another core's progress can unblock it), and the
     stat counter the blocked attempt charged. *)
  mutable wake : int;
  mutable blocked_stat : int;
  (* Event-driven freeze for blocks that only another core's progress
     can lift (wake = [max_int]): [frozen_stamp] holds the global event
     stamp captured when the head instruction blocked with nothing
     issued this cycle, and [replay_bucket] the bucket that block
     charged. While the stamp is unchanged no produce was delivered and
     no queue drained anywhere, so re-running the guard would repeat the
     same charge; [Sim.step_core_jit] replays it without the call. *)
  mutable frozen_stamp : int;
  mutable replay_bucket : int;
  (* stats *)
  mutable s_instrs : int;
  mutable s_comm : int;
  mutable s_stall_data : int;
  mutable s_stall_queue : int;
  mutable s_stall_ports : int;
  mutable s_loads : int;
  mutable s_l1 : int;
  mutable s_l2 : int;
  mutable s_l3 : int;
  mutable s_mem : int;
}

type t = {
  mc : Config.t;
  memory : int array;
  mask : int;
  cores : core array;
  queues : queue_state array;
  queue_peak : int array;
  l3 : Cache.t;
  mutable now : int;
  mutable sa_ports_left : int; (* per-cycle shared SA port budget *)
  (* Global cross-core event stamp, bumped whenever a value is produced
     or a queue entry is consumed — the only events that can lift a
     [max_int]-wake block. Monotone, so a stale [frozen_stamp] can never
     match again once an event has happened. *)
  mutable stamp : int;
}

let make (mc : Config.t) (p : Mtprog.t) ~init_regs ~init_mem ~mem_size =
  let mask = mem_size - 1 in
  let memory = Array.make mem_size 0 in
  List.iter (fun (a, v) -> memory.(a land mask) <- v) init_mem;
  let mk_core (f : Func.t) =
    let regs = Array.make (max 1 f.Func.n_regs) 0 in
    List.iter
      (fun (r, v) ->
        if Reg.to_int r < Array.length regs then regs.(Reg.to_int r) <- v)
      init_regs;
    {
      func = f;
      regs;
      reg_ready = Array.make (max 1 f.Func.n_regs) 0;
      pc = 0;
      finished = false;
      finish_cycle = 0;
      l1 = Cache.create ~size:mc.Config.l1_size ~assoc:mc.Config.l1_assoc
             ~line:mc.Config.l1_line;
      l2 = Cache.create ~size:mc.Config.l2_size ~assoc:mc.Config.l2_assoc
             ~line:mc.Config.l2_line;
      outstanding_syncs = 0;
      fence_ready = 0;
      k_cnt = Array.make 5 0;
      k_issued = 0;
      wake = max_int;
      blocked_stat = stat_none;
      frozen_stamp = -1;
      replay_bucket = 0;
      s_instrs = 0;
      s_comm = 0;
      s_stall_data = 0;
      s_stall_queue = 0;
      s_stall_ports = 0;
      s_loads = 0;
      s_l1 = 0;
      s_l2 = 0;
      s_l3 = 0;
      s_mem = 0;
    }
  in
  let n_queues = max 1 p.Mtprog.n_queues in
  {
    mc;
    memory;
    mask;
    cores = Array.map mk_core p.Mtprog.threads;
    queues =
      Array.init n_queues (fun _ -> make_queue ~capacity:mc.Config.queue_size);
    queue_peak = Array.make n_queues 0;
    l3 =
      Cache.create ~size:mc.Config.l3_size ~assoc:mc.Config.l3_assoc
        ~line:mc.Config.l3_line;
    now = 0;
    sa_ports_left = 0;
    stamp = 0;
  }

(* Deliver a produced value: to a waiting consumer if any, else enqueue. *)
let produce_to st q value =
  st.stamp <- st.stamp + 1;
  let qs = st.queues.(q) in
  if qs.w_len > 0 then begin
    let ready = st.now + st.mc.Config.sa_latency in
    let c = st.cores.(waiter_head_core qs) in
    let dst = waiter_head_dst qs in
    waiter_drop qs;
    if dst >= 0 then begin
      c.regs.(dst) <- value;
      c.reg_ready.(dst) <- ready
    end
    else begin
      c.outstanding_syncs <- c.outstanding_syncs - 1;
      if ready > c.fence_ready then c.fence_ready <- ready
    end
  end
  else begin
    entry_push qs ~value ~ready:(st.now + st.mc.Config.sa_latency);
    qs.logical_occupancy <- qs.logical_occupancy + 1;
    if qs.logical_occupancy > st.queue_peak.(q) then
      st.queue_peak.(q) <- qs.logical_occupancy
  end

let cache_load st core addr =
  let mc = st.mc in
  let byte_addr = addr * mc.Config.word_bytes in
  core.s_loads <- core.s_loads + 1;
  if Cache.access core.l1 ~addr:byte_addr then begin
    core.s_l1 <- core.s_l1 + 1;
    mc.Config.l1_latency
  end
  else if Cache.access core.l2 ~addr:byte_addr then begin
    core.s_l2 <- core.s_l2 + 1;
    mc.Config.l2_latency
  end
  else if Cache.access st.l3 ~addr:byte_addr then begin
    core.s_l3 <- core.s_l3 + 1;
    mc.Config.l3_latency
  end
  else begin
    core.s_mem <- core.s_mem + 1;
    mc.Config.mem_latency
  end

let cache_store st core addr =
  let byte_addr = addr * st.mc.Config.word_bytes in
  ignore (Cache.access core.l1 ~addr:byte_addr);
  ignore (Cache.access core.l2 ~addr:byte_addr);
  ignore (Cache.access st.l3 ~addr:byte_addr)
