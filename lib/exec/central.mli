(** Central-queue domain pool: the pre-[gmt_exec] runtime, preserved
    verbatim as the A/B baseline for the pool microbenchmark.

    One global FIFO under one mutex/condvar pair; every worker contends
    on that lock for every task. Fine for the coarse Fig-8 matrix cells
    it was built for, and exactly the contention profile the
    work-stealing {!Sched} exists to beat on fine-grained task floods —
    keeping it alive makes that claim measurable forever
    ([BENCH_pool.json]). Not used by any production fan-out path. *)

type t

val create : workers:int -> t
(** Spawn [workers] (>= 1) domains. No inline mode: the benchmark
    compares runtime machinery, so even [workers = 1] spawns a real
    domain, mirroring {!Sched.create}.
    @raise Invalid_argument when [workers < 1]. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue under the central lock.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Close the queue, let workers drain it, join them. Idempotent. *)
