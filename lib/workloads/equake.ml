(* 183.equake smvp (SPEC-CPU): sparse matrix-vector product — per-row
   pointer arithmetic and indirect loads feeding an FP multiply-accumulate
   chain, result stored once per row. *)

open Gmt_ir

let rowstart_base = 0
let colidx_base = 4096
let vals_base = 16384
let x_base = 28672
let y_base = 32768

let build () =
  let k = Kit.create "equake" in
  let rrow = Kit.region k "rowstart" in
  let rcol = Kit.region k "colidx" in
  let rval = Kit.region k "vals" in
  let rx = Kit.region k "x" in
  let ry = Kit.region k "y" in
  let n_rows = Kit.reg k in
  let n_steps = Kit.reg k in
  let i = Kit.reg k and kk = Kit.reg k and s = Kit.reg k in
  let step = Kit.reg k in
  let row_end = Kit.reg k in
  let pre = Kit.block k in
  let shead = Kit.block k in
  let sbody = Kit.block k in
  let ohead = Kit.block k in
  let obody = Kit.block k in
  let ihead = Kit.block k in
  let ibody = Kit.block k in
  let otail = Kit.block k in
  let stail = Kit.block k in
  let exit = Kit.block k in
  let zero = Kit.const k pre 0 in
  let one = Kit.const k pre 1 in
  let row_b = Kit.const k pre rowstart_base in
  let col_b = Kit.const k pre colidx_base in
  let val_b = Kit.const k pre vals_base in
  let x_b = Kit.const k pre x_base in
  let y_b = Kit.const k pre y_base in
  Kit.copy_to k pre ~dst:step zero;
  Kit.jump k pre shead;
  (* timestep loop: smvp runs once per solver iteration *)
  let sc = Kit.bin k shead Instr.Lt step n_steps in
  Kit.branch k shead sc sbody exit;
  Kit.copy_to k sbody ~dst:i zero;
  Kit.jump k sbody ohead;
  let oc = Kit.bin k ohead Instr.Lt i n_rows in
  Kit.branch k ohead oc obody stail;
  (* row bounds *)
  let ra = Kit.bin k obody Instr.Add row_b i in
  let start = Kit.load k obody rrow ra 0 in
  let rend = Kit.load k obody rrow ra 1 in
  Kit.copy_to k obody ~dst:row_end rend;
  Kit.copy_to k obody ~dst:kk start;
  Kit.copy_to k obody ~dst:s zero;
  Kit.jump k obody ihead;
  let ic = Kit.bin k ihead Instr.Lt kk row_end in
  Kit.branch k ihead ic ibody otail;
  (* ibody: indirect gather + FP MAC *)
  let ca = Kit.bin k ibody Instr.Add col_b kk in
  let j = Kit.load k ibody rcol ca 0 in
  let va = Kit.bin k ibody Instr.Add val_b kk in
  let v = Kit.load k ibody rval va 0 in
  let xa = Kit.bin k ibody Instr.Add x_b j in
  let xv = Kit.load k ibody rx xa 0 in
  let prod = Kit.bin k ibody Instr.Fmul v xv in
  Kit.bin_to k ibody Instr.Fadd ~dst:s s prod;
  Kit.bin_to k ibody Instr.Add ~dst:kk kk one;
  Kit.jump k ibody ihead;
  (* otail: store the row result *)
  let ya = Kit.bin k otail Instr.Add y_b i in
  Kit.store k otail ry ya 0 s;
  Kit.bin_to k otail Instr.Add ~dst:i i one;
  Kit.jump k otail ohead;
  Kit.bin_to k stail Instr.Add ~dst:step step one;
  Kit.jump k stail shead;
  Kit.ret k exit;
  (k, n_rows, n_steps)

let workload () =
  let k, n_rows, n_steps = build () in
  let func = Kit.finish k ~live_in:[ n_rows; n_steps ] in
  (* A banded sparse matrix with [nnz_per_row] entries per row. *)
  let input ~rows ~nnz ~steps seed =
    let total = rows * nnz in
    {
      Workload.regs = [ (n_rows, rows); (n_steps, steps) ];
      mem =
        Kit.fill ~base:rowstart_base ~n:(rows + 1) (fun i -> i * nnz)
        @ Kit.fill ~base:colidx_base ~n:total (fun e ->
              let row = e / nnz and slot = e mod nnz in
              (row + (slot * 17)) mod rows)
        @ Kit.rand_fill ~seed ~base:vals_base ~n:total ~bound:1000
        @ Kit.rand_fill ~seed:(seed + 3) ~base:x_base ~n:rows ~bound:1000;
    }
  in
  Workload.make ~name:"183.equake" ~suite:"SPEC-CPU" ~func_name:"smvp"
    ~exec_pct:63
    ~description:
      "Sparse matrix-vector product: indirect gathers feeding an FP \
       multiply-accumulate, one store per row"
    ~func
    ~train:(input ~rows:64 ~nnz:8 ~steps:2 21)
    ~reference:(input ~rows:512 ~nnz:12 ~steps:4 55)
    ()
