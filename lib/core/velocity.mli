(** The end-to-end compilation pipeline, named after the VELOCITY compiler
    the paper's system was implemented in: profile the kernel on its train
    input, build the PDG, partition (DSWP or GREMIO), generate
    multi-threaded code (MTCG, optionally with COCO's optimized
    communication placement), then measure on the reference input with the
    untimed interpreter (dynamic instruction counts, Figures 1 and 7) and
    the cycle simulator (speedups, Figure 8). *)

open Gmt_ir
module Workload = Gmt_workloads.Workload

type technique = Dswp | Gremio

val technique_name : technique -> string

type compiled = {
  workload : Workload.t;
  technique : technique;
  coco : bool;
  n_threads : int;
  pdg : Gmt_pdg.Pdg.t;
  partition : Gmt_sched.Partition.t;
  plan : Gmt_mtcg.Mtcg.plan;
  mtp : Mtprog.t;
  coco_stats : Gmt_coco.Coco.stats option;
}

(** Compile a workload.

    [profile_mode] (default [`Train]) selects the edge weights COCO and
    the partitioners use: [`Train] interprets the workload's train input
    (the paper's methodology); [`Static] uses the loop-nesting estimator —
    the paper notes static estimates "have been demonstrated to be also
    very accurate" [28].

    [disambiguate_offsets] (default false) enables the loop-invariant
    base + distinct-offset memory disambiguation extension.

    [optimize] (default false) runs the classical pre-pass pipeline
    (constant folding, copy propagation, DCE, CFG simplification) before
    scheduling, as the paper's compiler does. [cleanup] (default true)
    jump-threads and prunes the generated thread CFGs. *)
val compile :
  ?n_threads:int ->
  ?coco:bool ->
  ?profile_mode:[ `Train | `Static ] ->
  ?disambiguate_offsets:bool ->
  ?optimize:bool ->
  ?cleanup:bool ->
  technique ->
  Workload.t ->
  compiled

type metrics = {
  dyn_instrs : int;     (** total dynamic instructions, all threads *)
  comm_instrs : int;    (** produce+consume+sync instructions *)
  mem_syncs : int;      (** produce_sync + consume_sync only *)
  cycles : int;         (** simulated cycles (max over cores) *)
  deadlocked : bool;
}

(** Execute compiled code on the reference input and also check that its
    final memory matches the single-threaded run.
    @raise Failure on divergence or deadlock. *)
val measure : compiled -> metrics

(** Single-threaded reference numbers on the reference input. *)
val measure_single : Workload.t -> metrics

(** Machine configuration used for a compiled program's simulation
    (32-entry queues for DSWP pipelines, single-entry otherwise;
    [n_cores] defaults to the paper's 2). *)
val machine_config : ?n_cores:int -> technique -> Gmt_machine.Config.t
