(** IR instructions.

    A low-level, assembly-like instruction set: ALU/FP operations over
    virtual registers, loads and stores against named memory regions,
    branches, and the produce/consume communication primitives that the
    MTCG algorithm inserts (register transfer, and the [.sync] variants
    that carry no operand and only enforce ordering of memory accesses). *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Lt | Le | Eq | Ne | Gt | Ge
  | Min | Max
  (* FP-class operations: same integer semantics, but dispatched to the
     floating-point units by the machine model. *)
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

type unop = Neg | Not | Abs | Fneg | Fsqrt

type label = int
(** Basic-block label; indexes into the CFG's block table. *)

type queue = int
(** Synchronization-array queue number. *)

type region = int
(** Memory-region id: the granularity at which the alias analysis
    distinguishes memory (distinct regions never alias). *)

type op =
  | Const of Reg.t * int                      (** [dst <- imm] *)
  | Copy of Reg.t * Reg.t                     (** [dst <- src] *)
  | Unop of unop * Reg.t * Reg.t              (** [dst <- op src] *)
  | Binop of binop * Reg.t * Reg.t * Reg.t    (** [dst <- src1 op src2] *)
  | Load of region * Reg.t * Reg.t * int      (** [dst <- region\[base + off\]] *)
  | Store of region * Reg.t * int * Reg.t     (** [region\[base + off\] <- src] *)
  | Jump of label
  | Branch of Reg.t * label * label           (** if cond <> 0 then l1 else l2 *)
  | Return
  | Produce of queue * Reg.t                  (** send register value *)
  | Consume of Reg.t * queue                  (** receive register value *)
  | Produce_sync of queue                     (** memory-ordering token send *)
  | Consume_sync of queue                     (** memory-ordering token receive *)
  | Nop

type t = { id : int; op : op }
(** [id] is unique within a function and names the instruction in the PDG,
    in thread partitions, and in all analyses. *)

val make : id:int -> op -> t

(** Registers written / read by an instruction. *)
val defs : t -> Reg.t list
val uses : t -> Reg.t list

(** Memory region read / written, if any. *)
val mem_read : t -> region option
val mem_write : t -> region option

val is_terminator : t -> bool

(** Conditional branch only. *)
val is_branch : t -> bool

(** Load or store. *)
val is_memory : t -> bool

(** Produce / consume / produce_sync / consume_sync. *)
val is_communication : t -> bool

(** Jump / Return / Nop: pure control glue. Structural instructions are
    not partitioned among threads — every thread materializes its own —
    and they carry no dependences out. *)
val is_structural : t -> bool

(** Branch/jump successor labels ([] for non-terminators and [Return]). *)
val targets : t -> label list

(** [with_targets t ls] replaces the successor labels of a terminator, in
    the order reported by {!targets}.
    @raise Invalid_argument on arity mismatch or non-terminators. *)
val with_targets : t -> label list -> t

(** The word size shift amounts are reduced modulo (= [Sys.int_size]). *)
val word_bits : int

val eval_binop : binop -> int -> int -> int
(** Total semantics: division/remainder by zero yield 0; shifts are
    masked to the word size. *)

val eval_unop : unop -> int -> int

(** Mnemonic as printed in the textual syntax ([add], [fsqrt], ...). *)
val binop_name : binop -> string

val unop_name : unop -> string

val pp : Format.formatter -> t -> unit
val pp_op : Format.formatter -> op -> unit
val to_string : t -> string
