(** Static diagnostics over GMT-IR functions, driven by {!Absenv}.

    Codes are stable identifiers (CI greps for them):

    - [GL001] read of a possibly-uninitialized register
    - [GL002] unreachable basic block
    - [GL003] dead store (always overwritten before any possible read)
    - [GL004] region access provably out of memory bounds
    - [GL005] per-path produce/consume queue imbalance
    - [GL006] communication instruction in single-threaded code

    [GL001] and [GL006] over-approximate the checking interpreter's traps
    (clean programs cannot trap on those classes); [GL003]/[GL004] are
    must-analyses (a finding holds on every execution reaching it).
    Findings are deterministically sorted by (line, col, code, id). *)

open Gmt_ir

type finding = {
  code : string;
  iid : int;  (** instruction id the finding anchors to *)
  line : int;  (** 0 when no position information is available *)
  col : int;
  msg : string;
}

(** [run ~mem_size ?pos f] — [pos] maps instruction ids to source
    (line, col) when the function came from the textual frontend. *)
val run :
  mem_size:int -> ?pos:(int -> (int * int) option) -> Func.t -> finding list

(** ["CODE message"] or ["line:col: CODE message"] when positioned. *)
val render : finding -> string
