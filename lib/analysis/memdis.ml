open Gmt_ir
module Digraph = Gmt_graphalg.Digraph
module Scc = Gmt_graphalg.Scc

type access = { itv : Itv.t; sym : (int * int) option }

type t = {
  accesses : (int, access) Hashtbl.t;
  mem_size : int;
  pow2 : bool;
  once : int -> bool;
  iterations : int;
  n_nodes : int;
}

let analyze ~mem_size (f : Func.t) =
  if mem_size <= 0 then invalid_arg "Memdis.analyze: mem_size";
  let res = Absenv.analyze f in
  let cfg = f.Func.cfg in
  let accesses = Hashtbl.create 32 in
  Cfg.iter_instrs cfg (fun _ i ->
      match i.Instr.op with
      | Load (_, _, base, off) | Store (_, base, off, _) ->
        let st = Absenv.Engine.before res i.Instr.id in
        let itv, sym = Absenv.addr st ~base ~off in
        Hashtbl.replace accesses i.Instr.id { itv; sym }
      | _ -> ());
  (* A definition executes at most once per run iff its block lies on no
     CFG cycle; entry pseudo-defs (negative ids) trivially qualify. *)
  let g = Cfg.digraph cfg in
  let comp, n_comps = Scc.components g in
  let comp_size = Array.make n_comps 0 in
  Array.iter (fun c -> comp_size.(c) <- comp_size.(c) + 1) comp;
  let block_in_cycle l = comp_size.(comp.(l)) > 1 || Digraph.mem_edge g l l in
  let once id =
    if id < 0 then true
    else
      match Cfg.position cfg id with
      | l, _ -> not (block_in_cycle l)
      | exception Not_found -> false
  in
  {
    accesses;
    mem_size;
    pow2 = mem_size land (mem_size - 1) = 0;
    once;
    iterations = Absenv.Engine.iterations res;
    n_nodes = Absenv.Engine.n_nodes res;
  }

let in_bounds t itv = Itv.subset itv (Itv.range 0 (t.mem_size - 1))

let disjoint t i j =
  match (Hashtbl.find_opt t.accesses i, Hashtbl.find_opt t.accesses j) with
  | Some a, Some b ->
    if Itv.is_bot a.itv || Itv.is_bot b.itv then true
    else if in_bounds t a.itv && in_bounds t b.itv && Itv.disjoint a.itv b.itv
    then true
    else begin
      match (a.sym, b.sym) with
      | Some (s1, d1), Some (s2, d2) ->
        s1 = s2 && t.pow2 && t.once s1 && (d1 - d2) mod t.mem_size <> 0
      | _ -> false
    end
  | _ -> false

let addr_itv t i = Option.map (fun a -> a.itv) (Hashtbl.find_opt t.accesses i)
let iterations t = t.iterations
let n_nodes t = t.n_nodes
