(** Multi-commodity minimum cut, heuristic.

    Exact multi-pair min-cut is NP-hard (the paper cites Garey & Johnson), so
    COCO uses the heuristic of Section 3.1.3: solve each source-sink pair
    optimally in turn with the single-pair algorithm, removing the cut arcs
    from the graph after each pair so earlier cuts help disconnect later
    pairs. *)

type arc = {
  u : int;
  v : int;
  cap : int;  (** use {!Maxflow.infinity} for arcs barred from cutting *)
  tag : int;  (** client-chosen identifier, reported back for cut arcs *)
}

type result = {
  cut_tags : int list;  (** tags of arcs chosen for the cut, in pair order *)
  total_cost : int;     (** sum of the cut arcs' capacities *)
}

(** [solve ~n ~arcs ~pairs] disconnects every [(src, sink)] pair. Arc tags
    must be distinct. Pairs are processed in list order. *)
val solve : n:int -> arcs:arc list -> pairs:(int * int) list -> result
