(** Preflow-push (FIFO push–relabel) maximum flow, O(n^3).

    The paper notes that min-cut "can be solved by efficient and practical
    max-flow algorithms based on preflow-push, with worst-case time
    complexity O(n^3)" and that production compilers can switch to them if
    Edmonds–Karp ever becomes a bottleneck. This module provides that
    alternative behind the same interface shape as {!Maxflow}; property
    tests assert both algorithms compute identical flow values, and the
    bench harness compares their running times. *)

type t

val infinity : int
val create : int -> t

(** Same contract as {!Maxflow.add_arc} (duplicate arcs accumulate). *)
val add_arc : t -> int -> int -> int -> int

val n_nodes : t -> int
val max_flow : t -> src:int -> sink:int -> int

type cut = {
  value : int;
  src_side : bool array;
  arcs : (int * int * int) list;
}

(** Minimum cut from the residual graph after {!max_flow}; reports every
    forward arc crossing the cut, zero-capacity arcs included. *)
val min_cut : t -> src:int -> sink:int -> cut
