(** Structural validation of functions.

    Checked invariants:
    - every block ends in exactly one terminator, with none mid-block;
    - branch/jump targets are in range;
    - all registers mentioned are below [n_regs];
    - all regions mentioned are below the region count;
    - instruction ids are unique;
    - at least one [Return] is reachable from the entry. *)

val errors : Func.t -> string list

(** [check f] @raise Failure listing all violations, if any. *)
val check : Func.t -> unit

val is_valid : Func.t -> bool
