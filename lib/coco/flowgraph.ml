open Gmt_ir
module Controldep = Gmt_analysis.Controldep
module Profile = Gmt_analysis.Profile
module Partition = Gmt_sched.Partition
module Relevant = Gmt_mtcg.Relevant
module Comm = Gmt_mtcg.Comm
module Maxflow = Gmt_graphalg.Maxflow
module Multicut = Gmt_graphalg.Multicut

type ctx = {
  func : Func.t;
  cd : Controldep.t;
  profile : Profile.t;
  partition : Partition.t;
  rel : Relevant.t;
  src_thread : int;
  dst_thread : int;
  control_penalty : bool;
}

type cut_result = { points : Comm.point list; cost : int; finite : bool }

let sat_add a b = if a >= Maxflow.infinity - b then Maxflow.infinity else a + b

(* Branch blocks whose relevance the point's placement requires: the
   transitive controllers of the point's block; for an edge point, the
   branch guarding the edge as well. *)
let controlling_blocks ctx (point : Comm.point) =
  let cfg = ctx.func.cfg in
  match point with
  | Comm.On_edge (a, _) ->
    let term = Cfg.terminator cfg a in
    let own = if Instr.is_branch term then [ a ] else [] in
    own @ Controldep.closure_deps ctx.cd a
  | _ -> Controldep.closure_deps ctx.cd (Comm.block_of_point cfg point)

(* Cost of placing communication at [point]: infinite when unsafe or not
   relevant to the source thread; otherwise base plus the Section 3.1.2
   penalty — the execution weight of every branch that would newly become
   relevant to the target thread. *)
let point_cost ctx ~base ~safe point =
  if not safe then Maxflow.infinity
  else if
    not
      (Relevant.point_relevant ctx.rel ~thread:ctx.src_thread ctx.func.cfg
         ctx.cd point)
  then Maxflow.infinity
  else begin
    let cfg = ctx.func.cfg in
    let penalty =
      if not ctx.control_penalty then 0
      else
        List.fold_left
          (fun acc bl ->
            let term = Cfg.terminator cfg bl in
            if
              Instr.is_branch term
              && not
                   (Relevant.is_relevant_branch ctx.rel ~thread:ctx.dst_thread
                      ~branch_id:term.Instr.id)
            then sat_add acc (max 1 (Profile.block ctx.profile bl))
            else acc)
          0
          (controlling_blocks ctx point)
    in
    sat_add base penalty
  end

(* Generic construction. [point_live] says whether a point carries flow
   (register liveness w.r.t. the target thread; always true for memory);
   [point_safe] is the Property 3 filter (always true for memory). *)
type built = {
  n : int;
  net_arcs : (int * int * int * Comm.point) list; (* u, v, cost, point *)
  node_of_instr : (int, int) Hashtbl.t;
}

type node_key = Knode of int | Kentry of Instr.label

let build_arcs ctx ~point_live ~point_safe =
  let cfg = ctx.func.cfg in
  let node_tbl : (node_key, int) Hashtbl.t = Hashtbl.create 64 in
  let n = ref 0 in
  let node k =
    match Hashtbl.find_opt node_tbl k with
    | Some x -> x
    | None ->
      let x = !n in
      Hashtbl.replace node_tbl k x;
      incr n;
      x
  in
  let arcs = ref [] in
  let add_arc u v point base =
    let cost = point_cost ctx ~base ~safe:(point_safe point) point in
    arcs := (u, v, cost, point) :: !arcs
  in
  Cfg.iter_blocks cfg (fun blk ->
      let l = blk.Cfg.label in
      (* Weights are floored at 1: a point the training input never reached
         can still execute on other inputs, so cutting there is never free. *)
      let w_block = max 1 (Profile.block ctx.profile l) in
      (* entry -> first instruction *)
      (match blk.Cfg.body with
      | first :: _ ->
        let p = Comm.Block_entry l in
        if point_live p then
          add_arc (node (Kentry l)) (node (Knode first.Instr.id)) p w_block
      | [] -> ());
      (* adjacent instructions *)
      let rec chain = function
        | (a : Instr.t) :: (b : Instr.t) :: rest ->
          let p = Comm.After a.id in
          if point_live p then
            add_arc (node (Knode a.id)) (node (Knode b.id)) p w_block;
          chain (b :: rest)
        | _ -> ()
      in
      chain blk.Cfg.body;
      (* terminator -> successor block entries. The placement point is
         normalized to a jump-free location when possible: the successor's
         entry when this is its only incoming edge, the point before the
         terminator when the edge is the block's only outgoing one. A true
         critical edge needs a split block in both endpoint threads — two
         extra jumps per traversal — which is charged into the cost. *)
      let term = Cfg.terminator cfg l in
      let succs = List.sort_uniq compare (Cfg.succs cfg l) in
      List.iter
        (fun s ->
          let w_edge = max 1 (Profile.edge ctx.profile ~src:l ~dst:s) in
          let point, extra =
            if List.length (Cfg.preds cfg s) = 1 then (Comm.Block_entry s, 0)
            else if List.length succs = 1 then (Comm.Before term.Instr.id, 0)
            else (Comm.On_edge (l, s), 2 * w_edge)
          in
          if point_live (Comm.On_edge (l, s)) then
            add_arc
              (node (Knode term.Instr.id))
              (node (Kentry s))
              point (w_edge + extra))
        succs);
  let node_of_instr = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k v ->
      match k with Knode id -> Hashtbl.replace node_of_instr id v | Kentry _ -> ())
    node_tbl;
  ({ n = !n; net_arcs = List.rev !arcs; node_of_instr }, node)

let solve_register ctx ~reg ~safety ~tlive =
  let cfg = ctx.func.cfg in
  let r = reg in
  let live_set s = Reg.Set.mem r s in
  let point_live = function
    | Comm.Block_entry l -> live_set (Thread_live.live_at_entry tlive l)
    | Comm.After id -> live_set (Thread_live.live_after tlive id)
    | Comm.Before id -> live_set (Thread_live.live_before tlive id)
    | Comm.On_edge (a, b) ->
      live_set (Thread_live.live_at_entry tlive b)
      && live_set (Thread_live.live_after tlive (Cfg.terminator cfg a).Instr.id)
  in
  let point_safe = function
    | Comm.Block_entry l -> Reg.Set.mem r (Safety.safe_at_entry safety l)
    | Comm.After id -> Reg.Set.mem r (Safety.safe_after safety id)
    | Comm.Before id -> Reg.Set.mem r (Safety.safe_before safety id)
    | Comm.On_edge (a, _) ->
      Reg.Set.mem r (Safety.safe_after safety (Cfg.terminator cfg a).Instr.id)
  in
  let built, _node = build_arcs ctx ~point_live ~point_safe in
  (* Special source/sink nodes appended after the program-point nodes. *)
  let src_node = built.n and sink_node = built.n + 1 in
  let defs = ref [] in
  Cfg.iter_instrs cfg (fun _ (i : Instr.t) ->
      if
        List.exists (Reg.equal r) (Instr.defs i)
        && Partition.thread_of_opt ctx.partition i.id = Some ctx.src_thread
        && Reg.Set.mem r (Thread_live.live_after tlive i.id)
      then defs := i.id :: !defs);
  let users = Thread_live.users_of tlive r in
  let net = Maxflow.create (built.n + 2) in
  let point_of_arc = Hashtbl.create 64 in
  List.iter
    (fun (u, v, cost, point) ->
      let id = Maxflow.add_arc net u v cost in
      Hashtbl.replace point_of_arc id point)
    built.net_arcs;
  let baseline_points = List.rev_map (fun d -> Comm.After d) !defs in
  let connected = ref false in
  List.iter
    (fun d ->
      match Hashtbl.find_opt built.node_of_instr d with
      | Some nd ->
        ignore (Maxflow.add_arc net src_node nd Maxflow.infinity);
        connected := true
      | None -> ())
    !defs;
  List.iter
    (fun u ->
      match Hashtbl.find_opt built.node_of_instr u with
      | Some nu -> ignore (Maxflow.add_arc net nu sink_node Maxflow.infinity)
      | None -> ())
    users;
  if (not !connected) || users = [] then { points = []; cost = 0; finite = true }
  else begin
    let cut = Maxflow.min_cut net ~src:src_node ~sink:sink_node in
    if cut.Maxflow.value >= Maxflow.infinity then
      (* No finite cut: fall back to the MTCG placement. Should not occur;
         kept as a safety net. *)
      { points = baseline_points; cost = cut.Maxflow.value; finite = false }
    else
      let points =
        List.filter_map
          (fun (_, _, id) -> Hashtbl.find_opt point_of_arc id)
          cut.Maxflow.arcs
      in
      { points; cost = cut.Maxflow.value; finite = true }
  end

let solve_memory ctx ~pairs =
  let all_live _ = true in
  let built, _node = build_arcs ctx ~point_live:all_live ~point_safe:all_live in
  let arcs =
    List.mapi
      (fun tag (u, v, cost, _point) -> { Multicut.u; v; cap = cost; tag })
      built.net_arcs
  in
  let point_of_tag = Array.of_list (List.map (fun (_, _, _, p) -> p) built.net_arcs) in
  let node_pairs =
    List.filter_map
      (fun (s, d) ->
        match
          (Hashtbl.find_opt built.node_of_instr s,
           Hashtbl.find_opt built.node_of_instr d)
        with
        | Some ns, Some nd -> Some (ns, nd)
        | _ -> None)
      pairs
  in
  let result = Multicut.solve ~n:built.n ~arcs ~pairs:node_pairs in
  let points = List.map (fun tag -> point_of_tag.(tag)) result.Multicut.cut_tags in
  { points; cost = result.Multicut.total_cost; finite = true }
