(** Set-associative LRU cache model (hit/miss only, no coherence traffic;
    latencies are charged by the simulator's hierarchy walk). *)

type t

(** [create ~size ~assoc ~line] — sizes in bytes; the number of sets is
    [size / (assoc * line)], rounded up to at least 1. *)
val create : size:int -> assoc:int -> line:int -> t

(** [access t ~addr] — [true] on hit. Misses allocate the line (LRU
    eviction). [addr] is a byte address. *)
val access : t -> addr:int -> bool

(** [probe t ~addr] — hit test without state change. *)
val probe : t -> addr:int -> bool

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
