open Gmt_ir

type kind = Raw | War | Waw

let regions_of i =
  match (Instr.mem_read i, Instr.mem_write i) with
  | Some r, None -> Some (r, false)
  | None, Some r -> Some (r, true)
  | None, None -> None
  | Some _, Some _ -> assert false (* no load-store instructions in the IR *)

let may_alias i j =
  match (regions_of i, regions_of j) with
  | Some (ri, _), Some (rj, _) -> ri = rj
  | _ -> false

let dep_kind ~earlier ~later =
  match (regions_of earlier, regions_of later) with
  | Some (ri, wi), Some (rj, wj) when ri = rj -> (
    match (wi, wj) with
    | true, false -> Some Raw
    | false, true -> Some War
    | true, true -> Some Waw
    | false, false -> None)
  | _ -> None

let kind_to_string = function Raw -> "RAW" | War -> "WAR" | Waw -> "WAW"
