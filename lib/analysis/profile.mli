(** Edge and block execution profiles.

    COCO's min-cut costs are edge execution counts; control-flow penalties
    use branch (block) execution counts. Profiles come either from running
    the single-threaded interpreter on a training input, or from the static
    estimator (the paper notes static estimates are also accurate [28]). *)

open Gmt_ir

type t

val create : unit -> t

(** Accumulate counts. *)
val bump_edge : t -> src:Instr.label -> dst:Instr.label -> int -> unit

val bump_block : t -> Instr.label -> int -> unit

val edge : t -> src:Instr.label -> dst:Instr.label -> int
val block : t -> Instr.label -> int

(** Static estimator: block weight = 8^(loop depth), edge weight splits a
    block's weight evenly across its successors (at least 1 on each). *)
val static_estimate : Func.t -> t

(** Total of all block weights (for reporting). *)
val total_blocks : t -> int

val pp : Format.formatter -> t -> unit
