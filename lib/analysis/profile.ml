open Gmt_ir

type t = {
  edges : (Instr.label * Instr.label, int) Hashtbl.t;
  blocks : (Instr.label, int) Hashtbl.t;
}

let create () = { edges = Hashtbl.create 32; blocks = Hashtbl.create 32 }

let bump tbl key n =
  let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (cur + n)

let bump_edge t ~src ~dst n = bump t.edges (src, dst) n
let bump_block t l n = bump t.blocks l n

let edge t ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (src, dst))

let block t l = Option.value ~default:0 (Hashtbl.find_opt t.blocks l)

let static_estimate (f : Func.t) =
  let t = create () in
  let nest = Loopnest.compute f in
  let pow8 d =
    let rec go acc d = if d <= 0 then acc else go (acc * 8) (d - 1) in
    go 1 d
  in
  Cfg.iter_blocks f.cfg (fun b ->
      let w = pow8 (Loopnest.depth nest b.label) in
      bump_block t b.label w;
      let succs = Cfg.succs f.cfg b.label in
      let k = List.length succs in
      List.iter
        (fun s -> bump_edge t ~src:b.label ~dst:s (max 1 (w / max 1 k)))
        succs);
  t

let total_blocks t = Hashtbl.fold (fun _ v acc -> acc + v) t.blocks 0

let pp ppf t =
  Format.fprintf ppf "@[<v>profile:";
  let items =
    Hashtbl.fold (fun (s, d) w acc -> (s, d, w) :: acc) t.edges []
    |> List.sort compare
  in
  List.iter
    (fun (s, d, w) -> Format.fprintf ppf "@,  B%d -> B%d : %d" s d w)
    items;
  Format.fprintf ppf "@]"
