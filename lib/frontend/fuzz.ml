open Gmt_ir
module Workload = Gmt_workloads.Workload
module V = Gmt_core.Velocity
module Interp = Gmt_machine.Interp
module Mt_interp = Gmt_machine.Mt_interp
module Verify = Gmt_verify.Verify

(* --------------------------- mutations ---------------------------- *)

type mutation = Drop_produce | Swap_branch

let mutation_name = function
  | Drop_produce -> "drop-produce"
  | Swap_branch -> "swap-branch"

let mutation_of_string = function
  | "drop-produce" -> Some Drop_produce
  | "swap-branch" -> Some Swap_branch
  | _ -> None

(* Rebuild one thread with its first instruction satisfying [pick]
   rewritten by [rw]; returns None when no thread has such an
   instruction. Ids are preserved so verify's provenance stays intact. *)
let patch_first (mtp : Mtprog.t) pick rw =
  let done_ = ref false in
  let threads =
    Array.map
      (fun (tf : Func.t) ->
        if !done_ then tf
        else
          let cfg = tf.Func.cfg in
          let blocks =
            Array.init (Cfg.n_blocks cfg) (fun l ->
                let blk = Cfg.block cfg l in
                {
                  blk with
                  Cfg.body =
                    List.map
                      (fun (i : Instr.t) ->
                        if (not !done_) && pick i then begin
                          done_ := true;
                          { i with Instr.op = rw i.Instr.op }
                        end
                        else i)
                      blk.Cfg.body;
                })
          in
          if !done_ then
            { tf with Func.cfg = Cfg.make ~entry:(Cfg.entry cfg) blocks }
          else tf)
      mtp.Mtprog.threads
  in
  if !done_ then
    Some
      (Mtprog.make ~name:mtp.Mtprog.name ~threads
         ~n_queues:mtp.Mtprog.n_queues)
  else None

let apply_mutation m mtp =
  match m with
  | Drop_produce ->
    patch_first mtp
      (fun i -> match i.Instr.op with Instr.Produce _ -> true | _ -> false)
      (fun _ -> Instr.Nop)
  | Swap_branch ->
    patch_first mtp
      (fun i ->
        match i.Instr.op with
        | Instr.Branch (_, l1, l2) -> l1 <> l2
        | _ -> false)
      (function
        | Instr.Branch (c, l1, l2) -> Instr.Branch (c, l2, l1)
        | op -> op)

(* ------------------------ differential check ---------------------- *)

type finding = { cell : string; detail : string }

let cells = [ (V.Gremio, false); (V.Gremio, true); (V.Dswp, false);
              (V.Dswp, true) ]

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Why an MT run is not observationally equivalent to the oracle, or
   None when it is. *)
let mt_divergence (w : Workload.t) mtp ~queue_capacity ~fuel expect =
  let check sched =
    let r =
      Mt_interp.run ~sched ~fuel ~init_regs:w.Workload.reference.Workload.regs
        ~init_mem:w.Workload.reference.Workload.mem mtp ~queue_capacity
        ~mem_size:w.Workload.mem_size
    in
    if r.Mt_interp.deadlocked then
      Some ("deadlock: " ^ String.concat "; " r.Mt_interp.blocked)
    else if r.Mt_interp.fuel_exhausted then Some "fuel exhausted"
    else if not r.Mt_interp.queues_drained then
      Some "queues not drained at termination"
    else if r.Mt_interp.memory <> expect then
      Some "final memory diverges from the single-threaded oracle"
    else None
  in
  let rec go = function
    | [] -> None
    | sched :: rest -> (
      match check sched with Some why -> Some why | None -> go rest)
  in
  go [ Mt_interp.Round_robin; Mt_interp.Random 7 ]

(* Returns Ok with the number of cells actually cross-checked (a
   requested mutation can be inapplicable in some cells). *)
let check_workload_counted ?mutate ?(fuel = 2_000_000) ?(n_threads = 2)
    (w : Workload.t) =
  let oracle =
    let r =
      Interp.run ~fuel ~init_regs:w.Workload.reference.Workload.regs
        ~init_mem:w.Workload.reference.Workload.mem w.Workload.func
        ~mem_size:w.Workload.mem_size
    in
    if r.Interp.fuel_exhausted then None else Some r.Interp.memory
  in
  match oracle with
  | None -> Ok 0 (* cannot judge equivalence; skip *)
  | Some expect ->
    let rec go checked = function
      | [] -> Ok checked
      | (tech, coco) :: rest -> (
        let cell = V.cell_name (V.Mt (tech, coco)) in
        match V.compile ~n_threads ~coco ~verify:false tech w with
        | exception e ->
          Error
            { cell; detail = "compile raised: " ^ Printexc.to_string e }
        | c -> (
          let mutated =
            match mutate with
            | None -> Some c.V.mtp
            | Some m -> apply_mutation m c.V.mtp
          in
          match mutated with
          | None -> go checked rest (* mutation not applicable here *)
          | Some mtp ->
            let c = { c with V.mtp } in
            let diags =
              match V.verify_compiled c with
              | ds -> ds
              | exception e ->
                [
                  {
                    Verify.analysis = Verify.Coverage;
                    message = "verifier raised: " ^ Printexc.to_string e;
                    arc = None;
                    queue = None;
                    comm = None;
                    thread = None;
                    witness = [];
                  };
                ]
            in
            let queue_capacity =
              (V.machine_config tech).Gmt_machine.Config.queue_size
            in
            let divergence =
              mt_divergence w mtp ~queue_capacity ~fuel:(4 * fuel) expect
            in
            (match (diags, divergence) with
            | [], None -> go (checked + 1) rest
            | [], Some why ->
              Error
                {
                  cell;
                  detail =
                    "verifier ACCEPTED diverging code: MT run " ^ why;
                }
            | _ :: _, Some why ->
              Error
                {
                  cell;
                  detail =
                    Printf.sprintf
                      "miscompile caught: %d diagnostic(s) (%s) and MT run %s"
                      (List.length diags)
                      (first_line (Verify.render diags))
                      why;
                }
            | _ :: _, None ->
              Error
                {
                  cell;
                  detail =
                    Printf.sprintf
                      "verifier REJECTED observationally equivalent code: %s"
                      (first_line (Verify.render diags));
                })))
    in
    go 0 cells

let check_workload ?mutate ?fuel ?n_threads w =
  Result.map ignore (check_workload_counted ?mutate ?fuel ?n_threads w)

(* --------------------------- minimization ------------------------- *)

let fails ?mutate ?fuel ?n_threads stmts =
  match
    check_workload ?mutate ?fuel ?n_threads (Gen.workload ~name:"shrink" stmts)
  with
  | Ok () -> false
  | Error _ -> true
  | exception _ -> false

(* Greedy first-improvement descent over the shrink candidates, bounded
   so pathological programs cannot stall the fuzz run. *)
let minimize ?mutate ?fuel ?n_threads stmts =
  let budget = ref 400 in
  let rec go current =
    if !budget <= 0 then current
    else
      let rec try_cands = function
        | [] -> current
        | cand :: rest ->
          if !budget <= 0 then current
          else begin
            decr budget;
            if fails ?mutate ?fuel ?n_threads cand then go cand
            else try_cands rest
          end
      in
      try_cands (Gen.shrink_candidates current)
  in
  if fails ?mutate ?fuel ?n_threads stmts then go stmts else stmts

(* ----------------------------- drivers ---------------------------- *)

type report = {
  tested : int;
  skipped : int;
  findings : (string * finding) list;
}

(* Atomic: a fuzz run killed mid-write must not leave a truncated repro
   that the next triage run then fails to parse. *)
let write_file path contents = Gmt_cache.Diskio.write_atomic path contents
let ensure_dir = Gmt_cache.Diskio.ensure_dir

(* Fold per-program outcomes back into a report in submission order:
   the fan-out below runs programs on the pool, but the report (and the
   rendered output) is byte-identical for every --jobs value. Each task
   touches only its own repro file (names are unique per seed/workload)
   and [ensure_dir]/[write_atomic] are concurrency-safe. *)
let collect outcomes =
  let r =
    List.fold_left
      (fun r outcome ->
        match outcome with
        | `Skipped -> { r with skipped = r.skipped + 1 }
        | `Tested -> { r with tested = r.tested + 1 }
        | `Finding pf ->
          { r with tested = r.tested + 1; findings = pf :: r.findings })
      { tested = 0; skipped = 0; findings = [] }
      outcomes
  in
  { r with findings = List.rev r.findings }

let fuzz_seeds ?mutate ?fuel ?(out_dir = ".") ?jobs ~seeds () =
  collect
    (Gmt_parallel.Pool.run_list ?jobs
       (List.map
          (fun seed () ->
            let stmts = Gen.gen ~seed in
            let name = Printf.sprintf "fuzz-seed%d" seed in
            match
              check_workload_counted ?mutate ?fuel (Gen.workload ~name stmts)
            with
            | Ok 0 -> `Skipped
            | Ok _ -> `Tested
            | Error f ->
              let small = minimize ?mutate ?fuel stmts in
              ensure_dir out_dir;
              let path = Filename.concat out_dir (name ^ ".gmt") in
              write_file path (Text.print (Gen.workload ~name small));
              `Finding (path, f))
          seeds))

let fuzz_workloads ?mutate ?fuel ?(out_dir = ".") ?jobs ws =
  collect
    (Gmt_parallel.Pool.run_list ?jobs
       (List.map
          (fun (label, (w : Workload.t)) () ->
            match check_workload_counted ?mutate ?fuel w with
            | Ok 0 -> `Skipped
            | Ok _ -> `Tested
            | Error f ->
              ensure_dir out_dir;
              let path =
                Filename.concat out_dir
                  (Printf.sprintf "fuzz-%s.gmt" w.Workload.name)
              in
              write_file path (Text.print w);
              `Finding (label ^ " -> " ^ path, f))
          ws))

let render_report r =
  let head =
    Printf.sprintf "fuzz: %d program(s) cross-checked, %d skipped, %d finding(s)"
      r.tested r.skipped
      (List.length r.findings)
  in
  String.concat "\n"
    (head
    :: List.map
         (fun (where, f) ->
           Printf.sprintf "  %s [%s]: %s" where f.cell f.detail)
         r.findings)

(* ---------------------- lint soundness harness -------------------- *)

module Lint = Gmt_analysis.Lint
module Memdis = Gmt_analysis.Memdis
module Itv = Gmt_analysis.Itv
module Checkrun = Gmt_machine.Checkrun

type lint_mutation = Drop_def | Oob_base | Stray_produce

let lint_mutation_name = function
  | Drop_def -> "drop-def"
  | Oob_base -> "oob-base"
  | Stray_produce -> "stray-produce"

let lint_mutation_of_string = function
  | "drop-def" -> Some Drop_def
  | "oob-base" -> Some Oob_base
  | "stray-produce" -> Some Stray_produce
  | _ -> None

let lint_expected_code = function
  | Drop_def -> "GL001"
  | Oob_base -> "GL004"
  | Stray_produce -> "GL006"

let replace_op (f : Func.t) id op =
  let cfg = f.Func.cfg in
  let blocks =
    Array.init (Cfg.n_blocks cfg) (fun l ->
        let b = Cfg.block cfg l in
        {
          b with
          Cfg.body =
            List.map
              (fun (i : Instr.t) ->
                if i.Instr.id = id then { i with Instr.op } else i)
              b.Cfg.body;
        })
  in
  { f with Func.cfg = Cfg.make ~entry:(Cfg.entry cfg) blocks }

(* Seed a bug of the class the corresponding lint code must flag.  None
   when the workload has no applicable site. *)
let apply_lint_mutation m (w : Workload.t) =
  let f = w.Workload.func in
  let cfg = f.Func.cfg in
  match m with
  | Drop_def ->
    (* Nop out the only definition of some used, non-live-in register:
       its uses become genuinely uninitialized reads. *)
    let ndefs = Hashtbl.create 16 and used = Hashtbl.create 16 in
    Cfg.iter_instrs cfg (fun _ i ->
        List.iter
          (fun r ->
            Hashtbl.replace ndefs (Reg.to_int r)
              ((i.Instr.id, i.Instr.op)
              :: Option.value ~default:[]
                   (Hashtbl.find_opt ndefs (Reg.to_int r))))
          (Instr.defs i);
        List.iter
          (fun r -> Hashtbl.replace used (Reg.to_int r) ())
          (Instr.uses i));
    let live_in = List.map Reg.to_int f.Func.live_in in
    let candidate =
      Hashtbl.fold
        (fun r defs acc ->
          match (acc, defs) with
          | None, [ (id, op) ]
            when Hashtbl.mem used r
                 && (not (List.mem r live_in))
                 && (match op with
                    | Instr.Const _ | Instr.Copy _ | Instr.Unop _
                    | Instr.Binop _ | Instr.Load _ ->
                      true
                    | _ -> false) ->
            Some id
          | _ -> acc)
        ndefs None
    in
    Option.map (fun id -> { w with Workload.func = replace_op f id Instr.Nop }) candidate
  | Oob_base ->
    (* Push a provably in-bounds access past the end of memory: the
       interval analysis that proved it in-bounds now proves it out. *)
    let ms = w.Workload.mem_size in
    let s = Memdis.analyze ~mem_size:ms f in
    let bounds = Itv.range 0 (ms - 1) in
    let site = ref None in
    Cfg.iter_instrs cfg (fun _ i ->
        if !site = None then
          match (i.Instr.op, Memdis.addr_itv s i.Instr.id) with
          | (Instr.Load _ | Instr.Store _), Some itv
            when (not (Itv.is_bot itv)) && Itv.subset itv bounds ->
            site := Some i
          | _ -> ());
    Option.map
      (fun (i : Instr.t) ->
        let op =
          match i.Instr.op with
          | Instr.Load (rg, d, base, off) ->
            Instr.Load (rg, d, base, off + (2 * ms))
          | Instr.Store (rg, base, off, src) ->
            Instr.Store (rg, base, off + (2 * ms), src)
          | op -> op
        in
        { w with Workload.func = replace_op f i.Instr.id op })
      !site
  | Stray_produce ->
    (* A memory-ordering token send has no business in single-threaded
       code; always applicable. *)
    let id = Cfg.max_instr_id cfg + 1 in
    let entry = Cfg.entry cfg in
    let blocks =
      Array.init (Cfg.n_blocks cfg) (fun l ->
          let b = Cfg.block cfg l in
          if l = entry then
            {
              b with
              Cfg.body = Instr.make ~id (Instr.Produce_sync 0) :: b.Cfg.body;
            }
          else b)
    in
    Some { w with Workload.func = { f with Func.cfg = Cfg.make ~entry blocks } }

(* One workload's soundness obligations: every checking-interpreter trap
   is covered by a lint finding of the right class at the right
   instruction; every dynamically computed pre-mask address lies in its
   abstract interval; pairs the disambiguator called disjoint never
   overlap dynamically. *)
let lint_soundness ?(fuel = 2_000_000) (w : Workload.t) =
  let f = w.Workload.func in
  let ms = w.Workload.mem_size in
  let findings = Lint.run ~mem_size:ms f in
  let has code iid =
    List.exists
      (fun (fd : Lint.finding) -> fd.Lint.code = code && fd.Lint.iid = iid)
      findings
  in
  let s = Memdis.analyze ~mem_size:ms f in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  List.iter
    (fun ((iname : string), (inp : Workload.input)) ->
      let r =
        Checkrun.run ~fuel ~init_regs:inp.Workload.regs
          ~init_mem:inp.Workload.mem f ~mem_size:ms
      in
      (match r.Checkrun.outcome with
      | Checkrun.Finished | Checkrun.Out_of_fuel -> ()
      | Checkrun.Trapped t -> (
        if findings = [] then
          problem "%s: lint-clean program trapped: %s" iname
            (Checkrun.trap_to_string t);
        match t with
        | Checkrun.Uninit_read { iid; _ } ->
          if not (has "GL001" iid) then
            problem "%s: %s but no GL001 at i%d" iname
              (Checkrun.trap_to_string t) iid
        | Checkrun.Comm { iid } ->
          if not (has "GL006" iid) then
            problem "%s: %s but no GL006 at i%d" iname
              (Checkrun.trap_to_string t) iid
        | Checkrun.Oob _ -> ()
        (* covered by the interval containment check below *)));
      List.iter
        (fun (iid, addrs) ->
          match Memdis.addr_itv s iid with
          | None -> ()
          | Some itv ->
            List.iter
              (fun a ->
                if not (Itv.mem a itv) then
                  problem
                    "%s: i%d computed address %d outside its abstract \
                     interval %s"
                    iname iid a (Itv.to_string itv))
              addrs)
        r.Checkrun.addr_trace;
      let rec pairs = function
        | [] -> ()
        | (i, ai) :: rest ->
          List.iter
            (fun (j, aj) ->
              if
                Memdis.disjoint s i j
                && List.exists (fun a -> List.mem a aj) ai
              then
                problem
                  "%s: i%d and i%d proved disjoint but share a dynamic \
                   address"
                  iname i j)
            rest;
          pairs rest
      in
      pairs r.Checkrun.addr_trace)
    [ ("train", w.Workload.train); ("ref", w.Workload.reference) ];
  if !problems = [] then Ok () else Error (String.concat "; " (List.rev !problems))

type lint_report = {
  l_checked : int;
  l_skipped : int;
  l_problems : (string * string) list;
}

let lint_check_one ?inject ?fuel (label, (w : Workload.t)) =
  match inject with
  | None -> (
    match lint_soundness ?fuel w with
    | Ok () -> `Ok
    | Error m -> `Problem (label, m))
  | Some m -> (
    match apply_lint_mutation m w with
    | None -> `Skipped
    | Some w' ->
      let code = lint_expected_code m in
      let findings =
        Lint.run ~mem_size:w'.Workload.mem_size w'.Workload.func
      in
      if List.exists (fun (fd : Lint.finding) -> fd.Lint.code = code) findings
      then `Ok
      else
        `Problem
          ( label,
            Printf.sprintf "seeded %s not flagged with %s"
              (lint_mutation_name m) code ))

let lint_run ?inject ?fuel ?jobs ws =
  (* Same submission-order fold as [collect]: deterministic for any
     --jobs. *)
  let outcomes =
    Gmt_parallel.Pool.run_list ?jobs
      (List.map (fun labeled () -> lint_check_one ?inject ?fuel labeled) ws)
  in
  let r =
    List.fold_left
      (fun r outcome ->
        match outcome with
        | `Ok -> { r with l_checked = r.l_checked + 1 }
        | `Skipped -> { r with l_skipped = r.l_skipped + 1 }
        | `Problem p ->
          { r with l_checked = r.l_checked + 1; l_problems = p :: r.l_problems })
      { l_checked = 0; l_skipped = 0; l_problems = [] }
      outcomes
  in
  { r with l_problems = List.rev r.l_problems }

let lint_seeds ?inject ?fuel ?jobs ~seeds () =
  lint_run ?inject ?fuel ?jobs
    (List.map
       (fun seed ->
         let name = Printf.sprintf "lint-seed%d" seed in
         (name, Gen.workload ~name (Gen.gen ~seed)))
       seeds)

let lint_workloads ?inject ?fuel ?jobs ws = lint_run ?inject ?fuel ?jobs ws

let render_lint_report r =
  let head =
    Printf.sprintf "lint-fuzz: %d program(s) checked, %d skipped, %d problem(s)"
      r.l_checked r.l_skipped
      (List.length r.l_problems)
  in
  String.concat "\n"
    (head
    :: List.map
         (fun (where, m) -> Printf.sprintf "  %s: %s" where m)
         r.l_problems)
