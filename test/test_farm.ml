(* The gmt_farm layer: consistent-hash placement is deterministic and
   golden-pinned over the paper's 11-kernel corpus, a shard join moves
   only ~K/N keys and all of them to the newcomer, lookup is independent
   of insertion order (QCheck), the TCP transport survives one-byte
   dribble and mid-reply connection loss (retry exactly once, never a
   silent double compile), concurrent misses on one fingerprint coalesce
   into a single compile, and a killed shard's keys are served warm by
   its ring successor thanks to cache replication. *)

module Ring = Gmt_farm.Ring
module Router = Gmt_farm.Router
module Farm = Gmt_farm.Farm
module Shard = Gmt_farm.Shard
module Server = Gmt_service.Server
module Client = Gmt_service.Client
module Proto = Gmt_service.Proto
module Render = Gmt_service.Render
module Singleflight = Gmt_service.Singleflight
module Cache = Gmt_cache.Cache
module Registry = Gmt_telemetry.Registry
module Histogram = Gmt_telemetry.Histogram
module Json = Gmt_obs.Json
module V = Gmt_core.Velocity
module Text = Gmt_frontend.Text
module Gen = Gmt_frontend.Gen
module Suite = Gmt_workloads.Suite

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "gmt-farm-test-%d-%d.sock" (Unix.getpid ())
       !socket_counter)

let request_ok ~socket req =
  match Client.request ~socket req with
  | Ok o -> o
  | Error `No_daemon -> Alcotest.fail "daemon not reachable"
  | Error (`Busy m) -> Alcotest.failf "unexpected busy: %s" m
  | Error (`Protocol m) -> Alcotest.failf "protocol error: %s" m

let check_outcome label (expect : Render.outcome) (got : Render.outcome) =
  Alcotest.(check string) (label ^ " stdout") expect.Render.out got.Render.out;
  Alcotest.(check string) (label ^ " stderr") expect.Render.err got.Render.err;
  Alcotest.(check int) (label ^ " exit") expect.Render.code got.Render.code

(* ---------------------- golden ring placement ---------------------- *)

(* Every benchmark of the corpus, under the four technique cells the
   service tests exercise, keyed by the artifact-cache fingerprint the
   farm routes by. Pinning the full table means any change to the hash,
   the vnode count, or the fingerprint shows up as an explicit diff
   here — placement is part of the wire contract (it decides which
   shard's cache holds which artifact). *)
let corpus_cells () =
  let cells =
    [
      ("gremio", V.Gremio, false);
      ("gremio+coco", V.Gremio, true);
      ("dswp", V.Dswp, false);
      ("dswp+coco", V.Dswp, true);
    ]
  in
  List.concat_map
    (fun name ->
      let canonical = Text.print (Suite.find name) in
      List.map
        (fun (cell, technique, coco) ->
          ( name ^ "/" ^ cell,
            V.fingerprint ~n_threads:2 ~coco technique ~canonical ))
        cells)
    (List.sort compare (Suite.names ()))

let golden_placement =
  [
    ("177.mesa/gremio", "shard0");
    ("177.mesa/gremio+coco", "shard3");
    ("177.mesa/dswp", "shard3");
    ("177.mesa/dswp+coco", "shard1");
    ("181.mcf/gremio", "shard3");
    ("181.mcf/gremio+coco", "shard0");
    ("181.mcf/dswp", "shard0");
    ("181.mcf/dswp+coco", "shard0");
    ("183.equake/gremio", "shard0");
    ("183.equake/gremio+coco", "shard2");
    ("183.equake/dswp", "shard3");
    ("183.equake/dswp+coco", "shard0");
    ("188.ammp/gremio", "shard1");
    ("188.ammp/gremio+coco", "shard1");
    ("188.ammp/dswp", "shard2");
    ("188.ammp/dswp+coco", "shard1");
    ("300.twolf/gremio", "shard3");
    ("300.twolf/gremio+coco", "shard2");
    ("300.twolf/dswp", "shard2");
    ("300.twolf/dswp+coco", "shard0");
    ("435.gromacs/gremio", "shard1");
    ("435.gromacs/gremio+coco", "shard3");
    ("435.gromacs/dswp", "shard3");
    ("435.gromacs/dswp+coco", "shard0");
    ("458.sjeng/gremio", "shard1");
    ("458.sjeng/gremio+coco", "shard3");
    ("458.sjeng/dswp", "shard3");
    ("458.sjeng/dswp+coco", "shard0");
    ("adpcmdec/gremio", "shard3");
    ("adpcmdec/gremio+coco", "shard1");
    ("adpcmdec/dswp", "shard1");
    ("adpcmdec/dswp+coco", "shard0");
    ("adpcmenc/gremio", "shard3");
    ("adpcmenc/gremio+coco", "shard1");
    ("adpcmenc/dswp", "shard0");
    ("adpcmenc/dswp+coco", "shard0");
    ("ks/gremio", "shard3");
    ("ks/gremio+coco", "shard0");
    ("ks/dswp", "shard2");
    ("ks/dswp+coco", "shard0");
    ("mpeg2enc/gremio", "shard3");
    ("mpeg2enc/gremio+coco", "shard3");
    ("mpeg2enc/dswp", "shard2");
    ("mpeg2enc/dswp+coco", "shard0");
  ]

let test_golden_placement () =
  let shards = [ "shard0"; "shard1"; "shard2"; "shard3" ] in
  let ring = Ring.create shards in
  let actual =
    List.map
      (fun (label, key) -> (label, Option.get (Ring.lookup ring key)))
      (corpus_cells ())
  in
  if actual <> golden_placement then
    Alcotest.failf "placement drifted; actual table:\n%s"
      (String.concat "\n"
         (List.map
            (fun (l, s) -> Printf.sprintf "    (%S, %S);" l s)
            actual));
  (* Sanity on the same table: the corpus spreads over every shard. *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s ^ " owns some corpus keys") true
        (List.exists (fun (_, s') -> s = s') actual))
    shards

(* -------------------------- rebalance bound ------------------------ *)

let test_rebalance_bound () =
  let k = 200 in
  let keys = List.init k (Printf.sprintf "key-%d") in
  let before = Ring.create [ "shard0"; "shard1"; "shard2"; "shard3" ] in
  (* Deliberately scrambled insertion order: placement must not care. *)
  let after =
    Ring.create [ "shard2"; "shard4"; "shard0"; "shard3"; "shard1" ]
  in
  let moved =
    List.filter (fun key -> Ring.lookup before key <> Ring.lookup after key) keys
  in
  List.iter
    (fun key ->
      Alcotest.(check (option string))
        ("moved key lands on the newcomer: " ^ key)
        (Some "shard4") (Ring.lookup after key))
    moved;
  let n_moved = List.length moved in
  Alcotest.(check bool) "the newcomer takes some keys" true (n_moved > 0);
  (* Ideal is K/(N+1) = 40; with 64 vnodes allow 2x slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded churn: %d moved <= 80" n_moved)
    true
    (n_moved <= 2 * k / 5)

(* ------------------ insertion-order independence ------------------- *)

let gen_name =
  QCheck.Gen.(
    string_size ~gen:(map (fun i -> Char.chr (97 + i)) (int_range 0 25))
      (int_range 1 6))

let arbitrary_ring_case =
  QCheck.make
    ~print:(fun (names, key) ->
      Printf.sprintf "names=[%s] key=%S" (String.concat ";" names) key)
    QCheck.Gen.(pair (list_size (int_range 1 8) gen_name) gen_name)

let prop_ring_order_independent =
  QCheck.Test.make ~count:300
    ~name:"ring placement ignores insertion order and duplicates"
    arbitrary_ring_case
    (fun (names, key) ->
      let a = Ring.create names in
      let b = Ring.create (List.rev names) in
      let c = Ring.create (names @ names) in
      Ring.shards a = Ring.shards b
      && Ring.shards a = Ring.shards c
      && Ring.lookup a key = Ring.lookup b key
      && Ring.lookup a key = Ring.lookup c key
      && Ring.successors a key (Ring.size a)
         = Ring.successors b key (Ring.size b))

(* --------------------------- ring basics --------------------------- *)

let test_ring_basics () =
  Alcotest.(check bool) "empty ring is empty" true (Ring.is_empty (Ring.create []));
  Alcotest.(check (option string)) "empty lookup" None
    (Ring.lookup (Ring.create []) "k");
  let ring = Ring.create [ "a"; "b"; "c" ] in
  Alcotest.(check int) "size" 3 (Ring.size ring);
  let succ = Ring.successors ring "some-key" 3 in
  Alcotest.(check int) "successors are distinct" 3
    (List.length (List.sort_uniq compare succ));
  Alcotest.(check (option string))
    "owner heads the successor walk" (Ring.lookup ring "some-key")
    (match succ with s :: _ -> Some s | [] -> None);
  (* One shard: everything maps there, the walk has length one. *)
  let solo = Ring.create [ "only" ] in
  Alcotest.(check (option string)) "solo owner" (Some "only")
    (Ring.lookup solo "anything");
  Alcotest.(check (list string)) "solo successors" [ "only" ]
    (Ring.successors solo "anything" 5)

(* ------------------------- router health --------------------------- *)

let test_router_health () =
  let shards =
    List.map
      (fun n -> { Router.name = n; endpoint = "/tmp/" ^ n ^ ".sock" })
      [ "a"; "b"; "c" ]
  in
  let r = Router.create ~cooldown:0.05 shards in
  let key = "some-key" in
  let plan0 = Router.plan r ~key in
  Alcotest.(check int) "plan covers every shard" 3 (List.length plan0);
  let owner = (Option.get (Router.owner r ~key)).Router.name in
  Alcotest.(check string) "plan heads with the owner" owner
    (List.hd plan0).Router.name;
  (* Marking the owner down demotes it to the tail — never removes it. *)
  Router.mark_down r owner;
  Alcotest.(check bool) "owner unhealthy" false (Router.healthy r owner);
  let plan1 = Router.plan r ~key in
  Alcotest.(check int) "demoted plan still covers every shard" 3
    (List.length plan1);
  Alcotest.(check bool) "owner demoted off the head" true
    ((List.hd plan1).Router.name <> owner);
  Alcotest.(check string) "owner at the tail" owner
    (List.nth plan1 2).Router.name;
  (* Ring order of the healthy shards is preserved. *)
  Alcotest.(check (list string))
    "healthy prefix keeps ring order"
    (List.filter (fun n -> n <> owner) (List.map (fun s -> s.Router.name) plan0))
    (List.map (fun s -> s.Router.name) (List.filteri (fun i _ -> i < 2) plan1));
  (* The cooldown expires on its own; the owner is probed again. *)
  Unix.sleepf 0.08;
  Alcotest.(check bool) "cooldown expired" true (Router.healthy r owner);
  Alcotest.(check string) "owner back at the head" owner
    (List.hd (Router.plan r ~key)).Router.name;
  (* mark_up clears a fresh down immediately. *)
  Router.mark_down r owner;
  Router.mark_up r owner;
  Alcotest.(check bool) "mark_up restores" true (Router.healthy r owner)

(* ----------------------- endpoint grammar -------------------------- *)

let test_endpoint_grammar () =
  let tcp h p = Client.Tcp (h, p) and path s = Client.Unix_path s in
  List.iter
    (fun (s, expect) ->
      let got = Client.endpoint_of_string s in
      Alcotest.(check bool)
        (Printf.sprintf "endpoint %S" s)
        true (got = expect))
    [
      ("127.0.0.1:7070", tcp "127.0.0.1" 7070);
      ("localhost:1", tcp "localhost" 1);
      ("[::1]:7070", tcp "[::1]" 7070);
      ("/tmp/gmtd.sock", path "/tmp/gmtd.sock");
      ("./host:1", path "./host:1");
      ("host:0", path "host:0");
      ("host:99999", path "host:99999");
      ("host:", path "host:");
      ("plain-name", path "plain-name");
    ]

(* ------------------- one-byte-at-a-time frames --------------------- *)

(* A TCP peer is free to deliver a frame one byte per segment; read_exact
   must reassemble it. The frame bytes are captured from write_frame over
   a socketpair, then dribbled byte-by-byte over a real loopback TCP
   connection. *)
let test_frame_dribble () =
  let doc =
    Json.Obj
      [ ("op", Json.Str "run"); ("technique", Json.Str "dswp") ]
  in
  let payload = "func \"k\" { }" in
  (* Capture the encoded frame. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Proto.write_frame a ~payload doc;
  Unix.close a;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 256 in
  let rec drain () =
    match Unix.read b chunk 0 256 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Unix.close b;
  let frame = Buffer.contents buf in
  Alcotest.(check bool) "frame is non-trivial" true (String.length frame > 20);
  (* Dribble it over loopback TCP. *)
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 1;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no TCP port"
  in
  let writer =
    Domain.spawn (fun () ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        String.iter
          (fun ch ->
            ignore (Unix.write_substring fd (String.make 1 ch) 0 1);
            Unix.sleepf 0.0005)
          frame;
        Unix.close fd)
  in
  let fd, _ = Unix.accept lfd in
  (match Proto.read_frame fd with
  | Ok (j, p) ->
    Alcotest.(check (option string)) "dribbled op survives" (Some "run")
      (Proto.str_field j "op");
    Alcotest.(check string) "dribbled payload survives" payload p
  | Error `Eof -> Alcotest.fail "dribbled frame read as EOF"
  | Error (`Malformed m) -> Alcotest.failf "dribbled frame malformed: %s" m);
  Domain.join writer;
  Unix.close fd;
  Unix.close lfd

(* --------------------- retry classification ----------------------- *)

(* A scripted daemon impostor: one callback per accepted connection. *)
let with_fake_listener behaviors f =
  let path = fresh_socket () in
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 8;
  let served = Atomic.make 0 in
  let dom =
    Domain.spawn (fun () ->
        List.iter
          (fun behave ->
            let fd, _ = Unix.accept lfd in
            (try behave fd with _ -> ());
            (try Unix.close fd with _ -> ());
            Atomic.incr served)
          behaviors)
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join dom;
      Unix.close lfd;
      try Sys.remove path with _ -> ())
    (fun () -> f path served)

let read_then_hang_up fd = ignore (Proto.read_frame fd)

let read_then_pong fd =
  ignore (Proto.read_frame fd);
  Proto.write_frame fd
    (Json.Obj [ ("ok", Json.Bool true); ("version", Json.Str Proto.version) ])

(* Mid-reply EOF: the daemon dies after reading the request. The client
   must retry exactly once on a fresh connection — and succeed when the
   restarted daemon answers. *)
let test_retry_once_on_lost_connection () =
  with_fake_listener [ read_then_hang_up; read_then_pong ]
  @@ fun path served ->
  (match Client.ping ~socket:path with
  | Ok v -> Alcotest.(check string) "retried ping answers" Proto.version v
  | Error `No_daemon -> Alcotest.fail "EOF misclassified as No_daemon"
  | Error (`Busy m) -> Alcotest.failf "unexpected busy: %s" m
  | Error (`Protocol m) -> Alcotest.failf "retry did not recover: %s" m);
  Alcotest.(check int) "exactly two connections" 2 (Atomic.get served)

(* Lost twice: the retry is not a loop. The second EOF surfaces as a
   protocol error and no third connection is attempted. *)
let test_lost_twice_gives_up () =
  with_fake_listener [ read_then_hang_up; read_then_hang_up ]
  @@ fun path served ->
  (match Client.ping ~socket:path with
  | Error (`Protocol m) ->
    Alcotest.(check bool)
      (Printf.sprintf "error names the double loss (%s)" m)
      true
      (String.length m >= 5)
  | Ok _ -> Alcotest.fail "expected a protocol error after two losses"
  | Error `No_daemon -> Alcotest.fail "double loss misclassified as No_daemon"
  | Error (`Busy m) -> Alcotest.failf "unexpected busy: %s" m);
  Alcotest.(check int) "exactly two connections, no third" 2
    (Atomic.get served)

(* Connection refused (a bound-then-closed TCP port) is No_daemon — the
   failover / local-fallback signal, distinct from the retry path. *)
let test_refused_is_no_daemon () =
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Unix.close lfd;
  match Client.ping ~socket:(Printf.sprintf "127.0.0.1:%d" port) with
  | Error `No_daemon -> ()
  | Ok _ -> Alcotest.fail "expected No_daemon on a closed port"
  | Error _ -> Alcotest.fail "refused TCP connect must be No_daemon"

(* ------------------------ TCP round trip --------------------------- *)

let test_tcp_round_trip () =
  let w = Suite.find "ks" in
  let offline =
    Render.run ~jobs:1 ~technique:V.Gremio ~coco:false ~threads:2 w
  in
  let cfg =
    {
      (Server.default_config ~socket:(fresh_socket ())) with
      Server.tcp = Some ("127.0.0.1", 0);
      jobs = 2;
    }
  in
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port =
    match Server.tcp_port srv with
    | Some p -> p
    | None -> Alcotest.fail "server bound no TCP port"
  in
  Alcotest.(check bool) "ephemeral port resolved" true (port > 0);
  let socket = Printf.sprintf "127.0.0.1:%d" port in
  (match Client.ping ~socket with
  | Ok v -> Alcotest.(check string) "tcp ping" Proto.version v
  | Error _ -> Alcotest.fail "tcp ping failed");
  let gmt = Text.print w in
  let req =
    Client.run_request ~gmt ~technique:"gremio" ~coco:false ~threads:2 ()
  in
  let cold = request_ok ~socket req in
  check_outcome "tcp cold" offline cold;
  let warm = request_ok ~socket req in
  check_outcome "tcp warm" offline warm;
  Alcotest.(check string) "tcp warm is a hit" "hit" warm.Render.cache_status;
  (* The Unix socket serves the same daemon: a hit on either transport. *)
  let via_unix = request_ok ~socket:(Server.socket srv) req in
  check_outcome "unix view of tcp-warmed cache" offline via_unix;
  Alcotest.(check string) "shared cache across transports" "hit"
    via_unix.Render.cache_status

(* ---------------------- single-flight: unit ------------------------ *)

(* M domains race one key. Every domain bumps [entered] immediately
   before calling run, and the leader's body spins until all M have —
   then sleeps past the few instructions between a straggler's bump and
   its blocking in run. Deterministically: one leader, M-1 joiners. *)
let test_singleflight_unit () =
  let sf = Singleflight.create () in
  let m = 6 in
  let entered = Atomic.make 0 in
  let doms =
    List.init m (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr entered;
            Singleflight.run sf "the-key" (fun () ->
                while Atomic.get entered < m do
                  Domain.cpu_relax ()
                done;
                Unix.sleepf 0.05;
                42)))
  in
  let results = List.map Domain.join doms in
  List.iter
    (fun (v, _) -> Alcotest.(check int) "shared value" 42 v)
    results;
  let leads =
    List.length (List.filter (fun (_, r) -> r = `Led) results)
  in
  Alcotest.(check int) "exactly one leader" 1 leads;
  Alcotest.(check int) "everyone else joined" (m - 1) (m - leads);
  (* The flight is unpublished: a later run starts fresh and leads. *)
  let v, role = Singleflight.run sf "the-key" (fun () -> 7) in
  Alcotest.(check int) "fresh flight value" 7 v;
  Alcotest.(check bool) "fresh flight leads" true (role = `Led)

(* A leader's exception reaches the leader and every joined waiter. *)
let test_singleflight_exception () =
  let sf = Singleflight.create () in
  let m = 3 in
  let entered = Atomic.make 0 in
  let doms =
    List.init m (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr entered;
            match
              Singleflight.run sf "boom" (fun () ->
                  while Atomic.get entered < m do
                    Domain.cpu_relax ()
                  done;
                  Unix.sleepf 0.05;
                  failwith "compile exploded")
            with
            | _ -> `No_exn
            | exception Failure msg -> `Exn msg))
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "exception propagated" true
        (r = `Exn "compile exploded"))
    (List.map Domain.join doms);
  (* The poisoned flight is gone; the key works again. *)
  let v, _ = Singleflight.run sf "boom" (fun () -> 1) in
  Alcotest.(check int) "key usable after exception" 1 v

(* --------------------- single-flight: served ----------------------- *)

(* A synthetic straight-line program big enough that its compile takes
   long enough for every concurrent client to pile onto the flight. *)
let flood_workload () =
  Gen.workload ~name:"flood"
    (List.init 400 (fun i ->
         Gen.Arith
           ( i mod Array.length Gen.ops,
             i mod Gen.n_pool,
             (i + 1) mod Gen.n_pool,
             (i + 2) mod Gen.n_pool )))

let counter_value reg name =
  match Registry.find_counter reg name with
  | Some c -> Registry.counter_value c
  | None -> 0

(* M concurrent clients, one cold fingerprint: exactly one compile runs
   (one singleflight lead, one compile stage span, one cache store) and
   all M replies are byte-identical. *)
let test_server_coalescing () =
  let m = 5 in
  let gmt = Text.print (flood_workload ()) in
  let cfg =
    {
      (Server.default_config ~socket:(fresh_socket ())) with
      Server.jobs = m;
    }
  in
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let socket = Server.socket srv in
  let req =
    Client.check_request ~gmt ~technique:"dswp" ~coco:true ~threads:4 ()
  in
  let entered = Atomic.make 0 in
  let doms =
    List.init m (fun _ ->
        Domain.spawn (fun () ->
            (* Barrier: all M requests hit the daemon together. *)
            Atomic.incr entered;
            while Atomic.get entered < m do
              Domain.cpu_relax ()
            done;
            request_ok ~socket req))
  in
  let replies = List.map Domain.join doms in
  (match replies with
  | first :: rest ->
    Alcotest.(check int) "flood compiles cleanly" 0 first.Render.code;
    List.iteri
      (fun i o -> check_outcome (Printf.sprintf "reply %d" (i + 1)) first o)
      rest
  | [] -> assert false);
  let reg =
    match Server.registry srv with
    | Some r -> r
    | None -> Alcotest.fail "telemetry on but no registry"
  in
  Alcotest.(check int) "one singleflight lead" 1
    (counter_value reg "farm.singleflight.leads");
  Alcotest.(check int) "m-1 singleflight waits" (m - 1)
    (counter_value reg "farm.singleflight.waits");
  (match Registry.find_histogram reg "stage.req.compile" with
  | Some h -> Alcotest.(check int) "exactly one compile span" 1 (Histogram.count h)
  | None -> Alcotest.fail "no compile stage histogram");
  let s = Cache.stats (Server.cache srv) in
  Alcotest.(check int) "one store" 1 s.Cache.stores;
  (* A straggler after the flight is a plain cache hit. *)
  let warm = request_ok ~socket req in
  Alcotest.(check string) "post-flight request hits" "hit"
    warm.Render.cache_status;
  Alcotest.(check int) "no second lead" 1
    (counter_value reg "farm.singleflight.leads")

(* --no-coalesce (coalesce = false): same bytes, no flight counters. *)
let test_coalescing_off () =
  let gmt = Text.print (Suite.find "ks") in
  let cfg =
    {
      (Server.default_config ~socket:(fresh_socket ())) with
      Server.jobs = 2;
      coalesce = false;
    }
  in
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let req =
    Client.check_request ~gmt ~technique:"dswp" ~coco:false ~threads:2 ()
  in
  let offline =
    Render.check ~technique:V.Dswp ~coco:false ~threads:2 (Suite.find "ks")
  in
  check_outcome "uncoalesced reply" offline
    (request_ok ~socket:(Server.socket srv) req);
  match Server.registry srv with
  | Some reg ->
    Alcotest.(check int) "no lead counted" 0
      (counter_value reg "farm.singleflight.leads")
  | None -> Alcotest.fail "no registry"

(* -------------------- replication cache intake --------------------- *)

let test_ingest_semantics () =
  let mk name =
    {
      Cache.mtp = Gmt_ir.Mtprog.make ~name ~threads:[||] ~n_queues:0;
      comm_sites = 0;
      verified = true;
      w_name = name;
    }
  in
  let c = Cache.create ~mem_capacity:4 () in
  (* Two owned entries... *)
  Cache.store c "own1" (mk "own1");
  Cache.store c "own2" (mk "own2");
  (* ...and replicas fill the headroom. *)
  Alcotest.(check bool) "replica ingested" true (Cache.ingest c "rep1" (mk "rep1"));
  Alcotest.(check bool) "second replica ingested" true
    (Cache.ingest c "rep2" (mk "rep2"));
  Alcotest.(check bool) "replica findable" true (Cache.find c "rep1" <> None);
  (* Ingest refuses keys already present (idempotent intake). *)
  Alcotest.(check bool) "re-ingest refused" false
    (Cache.ingest c "rep1" (mk "rep1"));
  Alcotest.(check bool) "ingest of an owned key refused" false
    (Cache.ingest c "own1" (mk "own1"));
  (* Replica pressure beyond capacity never evicts owned entries:
     replicas tick below every owned entry, so the LRU eats them first. *)
  ignore (Cache.ingest c "rep3" (mk "rep3"));
  Alcotest.(check bool) "owned entry 1 survives" true
    (Cache.find c "own1" <> None);
  Alcotest.(check bool) "owned entry 2 survives" true
    (Cache.find c "own2" <> None);
  (* Ingest must not fire the on_store hook — a push cannot cascade. *)
  let fired = ref 0 in
  Cache.set_on_store c (Some (fun _ _ -> incr fired));
  ignore (Cache.ingest c "rep4" (mk "rep4"));
  Alcotest.(check int) "no hook on ingest" 0 !fired;
  Cache.store c "own3" (mk "own3");
  Alcotest.(check int) "hook still fires on store" 1 !fired;
  (* The wire codec round-trips an entry bit-exactly. *)
  let e = mk "codec" in
  match Cache.decode_entry (Cache.encode_entry e) with
  | Ok e' -> Alcotest.(check bool) "codec round-trip" true (e = e')
  | Error m -> Alcotest.failf "codec round-trip failed: %s" m

(* ------------------ farm failover + replication -------------------- *)

(* The tentpole, end to end over Unix sockets: two shards, a compile
   routed to its ring owner, the artifact replicated to the successor,
   the owner killed — and the same request served warm by the survivor,
   byte-identical. *)
let test_farm_failover_serves_replica () =
  let w = Suite.find "ks" in
  let gmt = Text.print w in
  let offline =
    Render.run ~jobs:1 ~technique:V.Gremio ~coco:false ~threads:2 w
  in
  let sock_a = fresh_socket () and sock_b = fresh_socket () in
  let peers = [ ("a", sock_a); ("b", sock_b) ] in
  let shard self socket =
    Shard.start
      {
        Shard.server =
          { (Server.default_config ~socket) with Server.jobs = 2 };
        self;
        peers;
      }
  in
  let sa = shard "a" sock_a and sb = shard "b" sock_b in
  let stopped = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (name, s) ->
          if not (List.mem name !stopped) then Shard.stop s)
        [ ("a", sa); ("b", sb) ])
  @@ fun () ->
  let farm =
    Farm.create ~cooldown:0.2
      [
        { Router.name = "a"; endpoint = sock_a };
        { Router.name = "b"; endpoint = sock_b };
      ]
  in
  let key =
    Farm.compile_key ~technique:V.Gremio ~coco:false ~threads:2
      ~canonical:gmt
  in
  let owner = (Option.get (Router.owner (Farm.router farm) ~key)).Router.name in
  let req =
    Client.run_request ~gmt ~technique:"gremio" ~coco:false ~threads:2 ()
  in
  (* Cold: routed to the ring owner, byte-identical to offline. *)
  (match Farm.request farm ~key req with
  | Ok (o, served_by) ->
    check_outcome "routed cold" offline o;
    Alcotest.(check string) "served by the ring owner" owner served_by
  | Error _ -> Alcotest.fail "cold farm request failed");
  (* Wait for the replication push to land on the successor. *)
  let owner_shard, survivor_shard, survivor_name =
    if owner = "a" then (sa, sb, "b") else (sb, sa, "a")
  in
  let survivor_cache = Server.cache (Shard.server survivor_shard) in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    Cache.find survivor_cache key = None
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "artifact replicated to the successor" true
    (Cache.find survivor_cache key <> None);
  (match Server.registry (Shard.server survivor_shard) with
  | Some reg ->
    Alcotest.(check int) "successor counted the ingest" 1
      (counter_value reg "farm.replication.ingested")
  | None -> Alcotest.fail "no survivor registry");
  (* Kill the owner; the same request fails over and is served WARM
     from the replica — the whole point of the push. *)
  Shard.stop owner_shard;
  stopped := [ owner ];
  (match Farm.request farm ~key req with
  | Ok (o, served_by) ->
    check_outcome "failover reply" offline o;
    Alcotest.(check string) "served by the survivor" survivor_name served_by;
    Alcotest.(check string) "served from the replica, warm" "hit"
      o.Render.cache_status
  | Error _ -> Alcotest.fail "failover request failed");
  (* The dead shard is marked down: the next plan leads with the
     survivor, so the farm pays no reconnect latency while it cools. *)
  Alcotest.(check bool) "owner marked down" false
    (Router.healthy (Farm.router farm) owner)

(* Every shard down: `No_shard, not a hang and not a protocol error. *)
let test_farm_no_shard () =
  let farm =
    Farm.create
      [
        { Router.name = "a"; endpoint = fresh_socket () };
        { Router.name = "b"; endpoint = fresh_socket () };
      ]
  in
  match
    Farm.request farm ~key:"k"
      (Client.check_request ~gmt:"x" ~technique:"dswp" ~coco:false ~threads:2
         ())
  with
  | Error `No_shard -> ()
  | Ok _ -> Alcotest.fail "request served with no shard up"
  | Error (`Busy _) -> Alcotest.fail "expected No_shard, got Busy"
  | Error (`Protocol m) -> Alcotest.failf "expected No_shard, got: %s" m

let tests =
  [
    Alcotest.test_case "golden corpus placement" `Quick test_golden_placement;
    Alcotest.test_case "rebalance bound on shard join" `Quick
      test_rebalance_bound;
    QCheck_alcotest.to_alcotest prop_ring_order_independent;
    Alcotest.test_case "ring basics" `Quick test_ring_basics;
    Alcotest.test_case "router health demotion" `Quick test_router_health;
    Alcotest.test_case "endpoint grammar" `Quick test_endpoint_grammar;
    Alcotest.test_case "one-byte-at-a-time frame" `Quick test_frame_dribble;
    Alcotest.test_case "retry once on lost connection" `Quick
      test_retry_once_on_lost_connection;
    Alcotest.test_case "lost twice gives up" `Quick test_lost_twice_gives_up;
    Alcotest.test_case "refused TCP connect is No_daemon" `Quick
      test_refused_is_no_daemon;
    Alcotest.test_case "TCP round trip" `Quick test_tcp_round_trip;
    Alcotest.test_case "singleflight unit" `Quick test_singleflight_unit;
    Alcotest.test_case "singleflight exception" `Quick
      test_singleflight_exception;
    Alcotest.test_case "server coalesces concurrent misses" `Quick
      test_server_coalescing;
    Alcotest.test_case "coalescing off" `Quick test_coalescing_off;
    Alcotest.test_case "replication ingest semantics" `Quick
      test_ingest_semantics;
    Alcotest.test_case "failover serves the replica" `Quick
      test_farm_failover_serves_replica;
    Alcotest.test_case "no shard reachable" `Quick test_farm_no_shard;
  ]
