(** Untimed concurrent interpreter for multi-threaded programs.

    Threads share memory and communicate through a {!Syncarray}. Each
    thread starts from the same initial register file (thread spawn copies
    registers, which is how live-ins reach all threads). Scheduling is
    per-instruction round-robin or seeded-random — correctness of MTCG
    output must not depend on the interleaving, and tests exercise both.

    This interpreter also yields the dynamic instruction counts behind the
    paper's Figures 1 and 7 (communication vs computation). *)

open Gmt_ir

type sched = Round_robin | Random of int  (** seed *)

(** Inner-loop implementation. [`Jit] (the default) compiles each
    instruction once into a closure that executes, advances and reports
    progress; [`Decoded] dispatches over array-indexed block bodies;
    [`Legacy] re-walks the IR lists. All three produce identical results
    for every scheduler — enforced by QCheck properties in
    [test_simkernel]. *)
type engine = [ `Decoded | `Jit | `Legacy ]

type thread_stats = {
  dyn_instrs : int;       (** everything executed, communication included *)
  produces : int;
  consumes : int;
  produce_syncs : int;
  consume_syncs : int;
}

type result = {
  memory : int array;
  threads : thread_stats array;
  deadlocked : bool;
  fuel_exhausted : bool;
  queues_drained : bool;  (** all queues empty at termination *)
  blocked : string list;
      (** when [deadlocked], one line per unfinished thread naming the
          queue it is stuck on; [[]] otherwise *)
}

val comm_of : thread_stats -> int

(** Total communication instructions executed, all threads. *)
val total_comm : result -> int

(** Total dynamic instructions, all threads. *)
val total_dyn : result -> int

val run :
  ?fuel:int ->
  ?sched:sched ->
  ?init_regs:(Reg.t * int) list ->
  ?init_mem:(int * int) list ->
  ?engine:engine ->
  Mtprog.t ->
  queue_capacity:int ->
  mem_size:int ->
  result
