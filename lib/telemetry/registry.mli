(** A named registry of telemetry instruments: the data model behind the
    gmtd [stats] plane.

    Four instrument families, each its own namespace:

    - {b counters} — monotonic totals ([Atomic] increments);
    - {b gauges} — last-written values (in-flight depth, pool size);
    - {b windows} — {!Rolling} counters ("busy replies in the last
      minute", "in-flight peak in the last minute");
    - {b histograms} — {!Histogram} latency distributions.

    Lookups are get-or-create and interned: the hot path resolves its
    instruments once at startup and then touches them without any table
    access or allocation. Export renders the whole registry either as a
    JSON document (keys sorted — byte-stable for a fixed state) or as
    Prometheus text-exposition format; both are pull-time snapshots and
    cost allocation, which is why they live on the [stats] request path
    rather than the compile path. All operations are thread-safe. *)

type t

type counter
type gauge

val create : unit -> t

(** {1 Instruments} *)

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** [window t kind name] — rolling window; [slots]/[slot_s] only apply
    on first creation (default: 60 × 1 s). *)
val window : ?slots:int -> ?slot_s:float -> t -> Rolling.kind -> string -> Rolling.t

val histogram : t -> string -> Histogram.t

(** Histogram by name, if created ([stats] consumers, tests). *)
val find_histogram : t -> string -> Histogram.t option

(** Counter by name, if created — lets tests and the bench harness read
    a server's counters (e.g. the farm single-flight pair) without
    racing instrument creation. *)
val find_counter : t -> string -> counter option

(** {1 Export} *)

(** The registry as a JSON value:
    [{"schema": "gmt-telemetry/1", "counters": {…}, "gauges": {…},
    "windows": {name: {"kind", "window_s", "total"}}, "histograms":
    {name: {"count","sum","min","max","mean","p50","p90","p99",
    "buckets": {"<lo>": n, …}}}}] — keys sorted, histogram buckets only
    where non-zero, keyed by inclusive lower bound. [now] is the clock
    used to close the rolling windows. *)
val json : ?now:float -> t -> Gmt_obs.Json.t

val render_json : ?now:float -> t -> string

(** Prometheus text exposition: every name mangled to
    [gmt_<name with non-alphanumerics as '_'>]; counters and gauges as
    single samples, windows as gauges suffixed [_window], histograms as
    cumulative [_bucket{le="…"}] series (non-empty buckets plus
    [le="+Inf"]) with [_sum] and [_count]. *)
val prometheus : ?now:float -> t -> string
