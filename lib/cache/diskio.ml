let write_atomic path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
    match
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> Some s
    | exception _ -> None)

let rec ensure_dir path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then ensure_dir parent;
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.is_directory path -> ()
  end
  else if not (Sys.is_directory path) then
    failwith (path ^ ": exists but is not a directory")
