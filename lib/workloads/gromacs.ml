(* 435.gromacs inl1130 (SPEC-CPU): water-water interaction kernel. Each
   neighbor block is processed in two phases, as the vectorized original
   buffers forces before scattering them:

   - phase 1, per pair: gather coordinates, FP distance / inverse-sqrt /
     Coulomb chain, store the scaled force components to a scratch buffer
     and accumulate the Coulomb energy;
   - phase 2, per pair: read the scratch buffer and read-modify-write the
     force array (faction).

   The phases communicate through the scratch region, so a GREMIO
   partition that splits them has inter-thread memory dependences — the
   paper reports >99% of gromacs's memory synchronizations removed by
   COCO. The FP-heavy, cache-resident working set is also why the paper's
   gromacs enjoys the doubled private L2 under DSWP (2.44x). *)

open Gmt_ir

let pos_base = 0
let jidx_base = 24576
let faction_base = 28672
let scratch_base = 57344
let vc_base = 61440

let build () =
  let k = Kit.create "gromacs" in
  let rpos = Kit.region k "positions" in
  let rjx = Kit.region k "jindex" in
  let rfac = Kit.region k "faction" in
  let rscr = Kit.region k "force_scratch" in
  let rvc = Kit.region k "vc_out" in
  let n_blocks = Kit.reg k in
  let block_sz = Kit.reg k in
  let blk = Kit.reg k and q = Kit.reg k and q2 = Kit.reg k in
  let vctot = Kit.reg k in
  let vvx = Kit.reg k and vvy = Kit.reg k and vvz = Kit.reg k in
  let pre = Kit.block k in
  let bhead = Kit.block k in
  let bbody = Kit.block k in
  let chead = Kit.block k in
  let cbody = Kit.block k in
  let sbody = Kit.block k in
  let btail = Kit.block k in
  let exit = Kit.block k in
  let zero = Kit.const k pre 0 in
  let one = Kit.const k pre 1 in
  let pos_b = Kit.const k pre pos_base in
  let jx_b = Kit.const k pre jidx_base in
  let fac_b = Kit.const k pre faction_base in
  let scr_b = Kit.const k pre scratch_base in
  let vc_b = Kit.const k pre vc_base in
  let qq = Kit.const k pre 332 in
  let posmask = Kit.const k pre 4095 in
  Kit.copy_to k pre ~dst:blk zero;
  Kit.copy_to k pre ~dst:vctot zero;
  Kit.copy_to k pre ~dst:vvx zero;
  Kit.copy_to k pre ~dst:vvy zero;
  Kit.copy_to k pre ~dst:vvz zero;
  Kit.jump k pre bhead;
  let bc = Kit.bin k bhead Instr.Lt blk n_blocks in
  Kit.branch k bhead bc bbody exit;
  Kit.copy_to k bbody ~dst:q zero;
  Kit.jump k bbody chead;
  (* phase 1: compute pair forces into the scratch buffer *)
  let cc = Kit.bin k chead Instr.Lt q block_sz in
  Kit.branch k chead cc cbody sbody;
  let three = Kit.const k cbody 3 in
  let pair = Kit.bin k cbody Instr.Mul blk block_sz in
  let pair2 = Kit.bin k cbody Instr.Add pair q in
  let ja = Kit.bin k cbody Instr.Add jx_b pair2 in
  let j3 = Kit.load k cbody rjx ja 0 in
  let i3 = Kit.bin k cbody Instr.Mul pair2 three in
  let i3m = Kit.bin k cbody Instr.And i3 posmask in
  let ia = Kit.bin k cbody Instr.Add pos_b i3m in
  let ix = Kit.load k cbody rpos ia 0 in
  let iy = Kit.load k cbody rpos ia 1 in
  let iz = Kit.load k cbody rpos ia 2 in
  let j3m = Kit.bin k cbody Instr.And j3 posmask in
  let jb = Kit.bin k cbody Instr.Add pos_b j3m in
  let jx = Kit.load k cbody rpos jb 0 in
  let jy = Kit.load k cbody rpos jb 1 in
  let jz = Kit.load k cbody rpos jb 2 in
  let dx = Kit.bin k cbody Instr.Fsub ix jx in
  let dy = Kit.bin k cbody Instr.Fsub iy jy in
  let dz = Kit.bin k cbody Instr.Fsub iz jz in
  let dx2 = Kit.bin k cbody Instr.Fmul dx dx in
  let dy2 = Kit.bin k cbody Instr.Fmul dy dy in
  let dz2 = Kit.bin k cbody Instr.Fmul dz dz in
  let rsq0 = Kit.bin k cbody Instr.Fadd dx2 dy2 in
  let rsq1 = Kit.bin k cbody Instr.Fadd rsq0 dz2 in
  let rsq = Kit.bin k cbody Instr.Fmax rsq1 one in
  let rinv = Kit.un k cbody Instr.Fsqrt rsq in
  let rinv1 = Kit.bin k cbody Instr.Fmax rinv one in
  let vcoul = Kit.bin k cbody Instr.Fdiv qq rinv1 in
  Kit.bin_to k cbody Instr.Fadd ~dst:vctot vctot vcoul;
  let fscal = Kit.bin k cbody Instr.Fdiv vcoul rsq in
  let fx = Kit.bin k cbody Instr.Fmul fscal dx in
  let fy = Kit.bin k cbody Instr.Fmul fscal dy in
  let fz = Kit.bin k cbody Instr.Fmul fscal dz in
  let q3 = Kit.bin k cbody Instr.Mul q three in
  let sa = Kit.bin k cbody Instr.Add scr_b q3 in
  Kit.store k cbody rscr sa 0 fx;
  Kit.store k cbody rscr sa 1 fy;
  Kit.store k cbody rscr sa 2 fz;
  Kit.bin_to k cbody Instr.Add ~dst:q q one;
  Kit.jump k cbody chead;
  (* phase 2: scatter the scratch buffer into the force array. The
     stride constant is re-materialized here rather than read from the
     pair loop: sbody runs even for a block with no pairs, where the
     phase-1 definition would be stale. *)
  let three_s = Kit.const k sbody 3 in
  Kit.copy_to k sbody ~dst:q2 zero;
  Kit.jump k sbody btail;
  (* btail doubles as the scatter loop body (do-while) *)
  let pairb = Kit.bin k btail Instr.Mul blk block_sz in
  let pairb2 = Kit.bin k btail Instr.Add pairb q2 in
  let jab = Kit.bin k btail Instr.Add jx_b pairb2 in
  let j3b = Kit.load k btail rjx jab 0 in
  let j3bm = Kit.bin k btail Instr.And j3b posmask in
  let q3b = Kit.bin k btail Instr.Mul q2 three_s in
  let sab = Kit.bin k btail Instr.Add scr_b q3b in
  let sfx = Kit.load k btail rscr sab 0 in
  let sfy = Kit.load k btail rscr sab 1 in
  let sfz = Kit.load k btail rscr sab 2 in
  let fjb = Kit.bin k btail Instr.Add fac_b j3bm in
  let ofx = Kit.load k btail rfac fjb 0 in
  let nfx = Kit.bin k btail Instr.Fsub ofx sfx in
  Kit.store k btail rfac fjb 0 nfx;
  let ofy = Kit.load k btail rfac fjb 1 in
  let nfy = Kit.bin k btail Instr.Fsub ofy sfy in
  Kit.store k btail rfac fjb 1 nfy;
  let ofz = Kit.load k btail rfac fjb 2 in
  let nfz = Kit.bin k btail Instr.Fsub ofz sfz in
  Kit.store k btail rfac fjb 2 nfz;
  (* virial (shift-force) accumulation, before and after the update *)
  let wx = Kit.bin k btail Instr.Fmul sfx sfx in
  Kit.bin_to k btail Instr.Fadd ~dst:vvx vvx wx;
  let wy = Kit.bin k btail Instr.Fmul sfy sfy in
  Kit.bin_to k btail Instr.Fadd ~dst:vvy vvy wy;
  let wz = Kit.bin k btail Instr.Fmul sfz sfz in
  Kit.bin_to k btail Instr.Fadd ~dst:vvz vvz wz;
  let nx2 = Kit.bin k btail Instr.Fmul nfx nfx in
  let ny2 = Kit.bin k btail Instr.Fmul nfy nfy in
  let nz2 = Kit.bin k btail Instr.Fmul nfz nfz in
  let n2a = Kit.bin k btail Instr.Fadd nx2 ny2 in
  let n2b = Kit.bin k btail Instr.Fadd n2a nz2 in
  Kit.bin_to k btail Instr.Fadd ~dst:vvx vvx n2b;
  Kit.bin_to k btail Instr.Add ~dst:q2 q2 one;
  let sc = Kit.bin k btail Instr.Lt q2 block_sz in
  let bnext = Kit.block k in
  Kit.branch k btail sc btail bnext;
  Kit.bin_to k bnext Instr.Add ~dst:blk blk one;
  Kit.jump k bnext bhead;
  Kit.store k exit rvc vc_b 0 vctot;
  Kit.store k exit rvc vc_b 1 vvx;
  Kit.store k exit rvc vc_b 2 vvy;
  Kit.store k exit rvc vc_b 3 vvz;
  Kit.ret k exit;
  (k, n_blocks, block_sz)

let workload () =
  let k, n_blocks, block_sz = build () in
  let func = Kit.finish k ~live_in:[ n_blocks; block_sz ] in
  let input ~blocks ~bsz seed =
    {
      Workload.regs = [ (n_blocks, blocks); (block_sz, bsz) ];
      mem =
        Kit.rand_fill ~seed ~base:pos_base ~n:4096 ~bound:3000
        @ Kit.fill ~base:jidx_base ~n:(blocks * bsz) (fun e ->
              (e * 97 + 13) mod 4000);
    }
  in
  Workload.make ~name:"435.gromacs" ~suite:"SPEC-CPU" ~func_name:"inl1130"
    ~exec_pct:75
    ~description:
      "Water-water interactions: FP distance/Coulomb/force chain buffered \
       per neighbor block, then scattered into the force array"
    ~func
    ~train:(input ~blocks:8 ~bsz:32 33)
    ~reference:(input ~blocks:128 ~bsz:48 71)
    ()
