open Gmt_ir
module Controldep = Gmt_analysis.Controldep
module Partition = Gmt_sched.Partition
module Iset = Set.Make (Int)

type t = {
  branch_sets : Iset.t array;  (* per thread: relevant branch ids *)
  block_sets : Iset.t array;   (* per thread: relevant block labels *)
}

(* Branch ids directly controlling block [l]. *)
let controllers cd cfg l =
  List.map (fun a -> (Cfg.terminator cfg a).Instr.id) (Controldep.deps cd l)

let compute (f : Func.t) cd partition comms =
  let cfg = f.cfg in
  let n_threads = Partition.n_threads partition in
  let branch_sets = Array.make n_threads Iset.empty in
  let block_of_branch = Hashtbl.create 16 in
  Cfg.iter_blocks cfg (fun b ->
      let term = Cfg.terminator cfg b.label in
      if Instr.is_branch term then Hashtbl.replace block_of_branch term.id b.label);
  let add th id =
    if not (Iset.mem id branch_sets.(th)) then begin
      branch_sets.(th) <- Iset.add id branch_sets.(th);
      true
    end
    else false
  in
  (* Seeds: branches assigned to the thread, and branches directly
     controlling any instruction assigned to the thread. *)
  Cfg.iter_instrs cfg (fun l (i : Instr.t) ->
      match Partition.thread_of_opt partition i.id with
      | None -> ()
      | Some th ->
        if Instr.is_branch i then ignore (add th i.id);
        List.iter (fun b -> ignore (add th b)) (controllers cd cfg l));
  (* Branches controlling communication points (both endpoints' threads
     need the point in their CFG). *)
  let point_controllers p =
    match p with
    | Comm.On_edge (a, b) ->
      ignore b;
      let term = Cfg.terminator cfg a in
      let own = if Instr.is_branch term then [ term.id ] else [] in
      own @ controllers cd cfg a
    | _ -> controllers cd cfg (Comm.block_of_point cfg p)
  in
  List.iter
    (fun (c : Comm.t) ->
      List.iter
        (fun b ->
          ignore (add c.src b);
          ignore (add c.dst b))
        (point_controllers c.point))
    comms;
  (* Closure: a branch controlling a relevant branch is relevant. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for th = 0 to n_threads - 1 do
      Iset.iter
        (fun br ->
          match Hashtbl.find_opt block_of_branch br with
          | None -> ()
          | Some l ->
            List.iter
              (fun b -> if add th b then changed := true)
              (controllers cd cfg l))
        branch_sets.(th)
    done
  done;
  (* Relevant blocks: blocks holding the thread's instructions, its
     communication points, and its relevant branches. *)
  let block_sets = Array.make n_threads Iset.empty in
  let add_block th l = block_sets.(th) <- Iset.add l block_sets.(th) in
  Cfg.iter_instrs cfg (fun l (i : Instr.t) ->
      match Partition.thread_of_opt partition i.id with
      | Some th -> add_block th l
      | None -> ());
  List.iter
    (fun (c : Comm.t) ->
      let l = Comm.block_of_point cfg c.point in
      add_block c.src l;
      add_block c.dst l)
    comms;
  for th = 0 to n_threads - 1 do
    Iset.iter
      (fun br ->
        match Hashtbl.find_opt block_of_branch br with
        | Some l -> add_block th l
        | None -> ())
      branch_sets.(th)
  done;
  { branch_sets; block_sets }

let branches t th = t.branch_sets.(th)
let blocks t th = t.block_sets.(th)

let is_relevant_branch t ~thread ~branch_id =
  Iset.mem branch_id t.branch_sets.(thread)

let is_relevant_block t ~thread l = Iset.mem l t.block_sets.(thread)

let point_relevant t ~thread cfg cd p =
  let ctl =
    match p with
    | Comm.On_edge (a, _) ->
      let term = Cfg.terminator cfg a in
      let own = if Instr.is_branch term then [ term.Instr.id ] else [] in
      own
      @ List.map
          (fun x -> (Cfg.terminator cfg x).Instr.id)
          (Controldep.deps cd a)
    | _ ->
      let l = Comm.block_of_point cfg p in
      List.map
        (fun x -> (Cfg.terminator cfg x).Instr.id)
        (Controldep.deps cd l)
  in
  List.for_all (fun b -> Iset.mem b t.branch_sets.(thread)) ctl
