open Gmt_ir
module Profile = Gmt_analysis.Profile

type result = {
  memory : int array;
  regs : int array;
  dyn_instrs : int;
  profile : Profile.t;
  fuel_exhausted : bool;
}

exception Stuck of string

let is_pow2 n = n > 0 && n land (n - 1) = 0

let run ?(fuel = 50_000_000) ?(init_regs = []) ?(init_mem = []) (f : Func.t)
    ~mem_size =
  if not (is_pow2 mem_size) then invalid_arg "Interp.run: mem_size not 2^k";
  let mask = mem_size - 1 in
  let memory = Array.make mem_size 0 in
  List.iter (fun (a, v) -> memory.(a land mask) <- v) init_mem;
  let regs = Array.make (max 1 f.n_regs) 0 in
  List.iter (fun (r, v) -> regs.(Reg.to_int r) <- v) init_regs;
  let profile = Profile.create () in
  let cfg = f.cfg in
  let get r = regs.(Reg.to_int r) in
  let set r v = regs.(Reg.to_int r) <- v in
  let dyn = ref 0 in
  let fuel_left = ref fuel in
  let finished = ref false in
  let block = ref (Cfg.entry cfg) in
  (try
     while not !finished do
       Profile.bump_block profile !block 1;
       let body = Cfg.body cfg !block in
       let next = ref None in
       List.iter
         (fun (i : Instr.t) ->
           if !next = None && not !finished then begin
             decr fuel_left;
             if !fuel_left <= 0 then raise Exit;
             incr dyn;
             match i.op with
             | Const (d, k) -> set d k
             | Copy (d, s) -> set d (get s)
             | Unop (u, d, s) -> set d (Instr.eval_unop u (get s))
             | Binop (b, d, x, y) -> set d (Instr.eval_binop b (get x) (get y))
             | Load (_, d, base, off) ->
               set d memory.((get base + off) land mask)
             | Store (_, base, off, s) ->
               memory.((get base + off) land mask) <- get s
             | Jump l -> next := Some l
             | Branch (c, l1, l2) ->
               next := Some (if get c <> 0 then l1 else l2)
             | Return -> finished := true
             | Produce _ | Consume _ | Produce_sync _ | Consume_sync _ ->
               raise
                 (Stuck
                    (Printf.sprintf
                       "communication instruction i%d in single-threaded code"
                       i.id))
             | Nop -> ()
           end)
         body;
       (match !next with
       | Some l ->
         Profile.bump_edge profile ~src:!block ~dst:l 1;
         block := l
       | None -> if not !finished then raise (Stuck "block fell through"))
     done;
     ()
   with Exit -> ());
  {
    memory;
    regs;
    dyn_instrs = !dyn;
    profile;
    fuel_exhausted = !fuel_left <= 0;
  }
