(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm". *)

type t = {
  root : int;
  idom : int array;       (* idom in node ids; root maps to itself; -1 unreachable *)
  depth : int array;      (* dominator-tree depth; -1 unreachable *)
  kids : int list array;
}

let postorder g root =
  let seen = Array.make (Digraph.n_nodes g) false in
  let order = ref [] in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go (Digraph.succs g v);
      order := v :: !order
    end
  in
  go root;
  (* !order is reverse postorder *)
  List.rev !order

let compute g root =
  let n = Digraph.n_nodes g in
  let po = postorder g root in
  let rpo = List.rev po in
  let po_num = Array.make n (-1) in
  List.iteri (fun i v -> po_num.(v) <- i) po;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while po_num.(!f1) < po_num.(!f2) do f1 := idom.(!f1) done;
      while po_num.(!f2) < po_num.(!f1) do f2 := idom.(!f2) done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> root then begin
          let processed_preds =
            List.filter
              (fun p -> po_num.(p) >= 0 && idom.(p) <> -1)
              (Digraph.preds g v)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(v) <> new_idom then begin
              idom.(v) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  let depth = Array.make n (-1) in
  let kids = Array.make n [] in
  let rec depth_of v =
    if depth.(v) >= 0 then depth.(v)
    else if v = root then begin
      depth.(v) <- 0;
      0
    end
    else begin
      let d = 1 + depth_of idom.(v) in
      depth.(v) <- d;
      d
    end
  in
  List.iter (fun v -> if idom.(v) <> -1 then ignore (depth_of v)) rpo;
  List.iter
    (fun v ->
      if v <> root && idom.(v) <> -1 then kids.(idom.(v)) <- v :: kids.(idom.(v)))
    po;
  { root; idom; depth; kids }

let root t = t.root
let is_reachable t v = t.idom.(v) <> -1

let idom t v =
  if v = t.root || t.idom.(v) = -1 then None else Some t.idom.(v)

let dominates t a b =
  if not (is_reachable t a) || not (is_reachable t b) then false
  else begin
    let v = ref b in
    while t.depth.(!v) > t.depth.(a) do
      v := t.idom.(!v)
    done;
    !v = a
  end

let strictly_dominates t a b = a <> b && dominates t a b

let dominators t v =
  if not (is_reachable t v) then []
  else begin
    let rec up v acc = if v = t.root then v :: acc else up t.idom.(v) (v :: acc) in
    List.rev (up v [])
  end

let children t v = t.kids.(v)
