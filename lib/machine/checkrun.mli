(** A checking interpreter for single-threaded GMT-IR: the dynamic half of
    the {!Gmt_analysis.Lint} soundness harness.

    Unlike {!Interp}, which masks addresses silently and treats
    uninitialized registers as zero, this engine {e traps} on the events
    the linter claims to rule out — reading a register with no prior
    definition, a pre-mask out-of-bounds address, a communication
    instruction — and records every pre-mask address each memory
    instruction touches, so fuzzing can confront {!Gmt_analysis.Absenv}'s
    abstract address intervals and {!Gmt_analysis.Memdis}'s disjointness
    verdicts with concrete executions. *)

open Gmt_ir

type trap =
  | Uninit_read of { iid : int; reg : Reg.t }
      (** a use of a register neither live-in, supplied by [init_regs],
          nor defined earlier on this path *)
  | Oob of { iid : int; addr : int }
      (** pre-mask effective address outside [0, mem_size) *)
  | Comm of { iid : int }
      (** produce/consume in single-threaded code *)

type outcome =
  | Finished
  | Trapped of trap
  | Out_of_fuel

type t = {
  outcome : outcome;
  addr_trace : (int * int list) list;
      (** per memory-instruction id, the sorted distinct {e pre-mask}
          addresses it computed (including the one a trap fired on) *)
  dyn : int;  (** dynamic instructions retired *)
}

val trap_to_string : trap -> string

(** Run [f] to completion, a trap, or fuel exhaustion. Initially-defined
    registers are [f.live_in] plus the keys of [init_regs]; memory
    contents follow {!Interp.run}'s convention ([init_mem] addresses are
    masked). [mem_size] must be a power of two. *)
val run :
  ?fuel:int ->
  ?init_regs:(Reg.t * int) list ->
  ?init_mem:(int * int) list ->
  Func.t ->
  mem_size:int ->
  t
