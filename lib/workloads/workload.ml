open Gmt_ir

type input = { regs : (Reg.t * int) list; mem : (int * int) list }

type t = {
  name : string;
  suite : string;
  func_name : string;
  exec_pct : int;
  description : string;
  func : Func.t;
  train : input;
  reference : input;
  mem_size : int;
}

let make ~name ~suite ~func_name ~exec_pct ~description ~func ~train
    ~reference ?(mem_size = 65536) () =
  {
    name;
    suite;
    func_name;
    exec_pct;
    description;
    func;
    train;
    reference;
    mem_size;
  }
