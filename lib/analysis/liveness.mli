(** Classic backward liveness of virtual registers. *)

open Gmt_ir

type t

(** [compute f] uses [f.live_out] as the boundary fact at [Return]. *)
val compute : Func.t -> t

val live_in : t -> Instr.label -> Reg.Set.t
val live_out : t -> Instr.label -> Reg.Set.t

(** Liveness just before / after an instruction (by id). *)
val live_before : t -> int -> Reg.Set.t

val live_after : t -> int -> Reg.Set.t
