(* The static lint client: one surgical fixture per diagnostic code, the
   deterministic (line, col, code, id) ordering the golden CLI test
   relies on, position anchoring through the textual frontend, and the
   corpus-cleanliness invariant ([gmtc lint] over the workload suite
   must stay silent — the fuzz harness separately proves silence implies
   no traps). *)

open Gmt_ir
module Lint = Gmt_analysis.Lint
module Text = Gmt_frontend.Text

let codes fs = List.map (fun f -> f.Lint.code) fs

let has_code c fs =
  List.exists (fun f -> f.Lint.code = c && f.Lint.msg <> "") fs

let lint ?pos ~mem_size f = Lint.run ~mem_size ?pos f

(* --------------------------- fixtures ----------------------------- *)

let clean_func () =
  let b = Builder.create ~name:"clean" () in
  let a = Builder.reg b and v = Builder.reg b in
  let m = Builder.region b "m" in
  let b0 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (a, 4)));
  ignore (Builder.add b b0 (Instr.Const (v, 7)));
  ignore (Builder.add b b0 (Instr.Store (m, a, 0, v)));
  let ld = Builder.add b b0 (Instr.Load (m, v, a, 0)) in
  ignore (Builder.terminate b b0 Instr.Return);
  ignore ld;
  Builder.finish b ~live_in:[] ~live_out:[ v ]

let test_clean () =
  Alcotest.(check (list string))
    "no findings" []
    (codes (lint ~mem_size:1024 (clean_func ())))

let test_gl001_uninit_read () =
  let b = Builder.create ~name:"uninit" () in
  let u = Builder.reg b and d = Builder.reg b in
  let b0 = Builder.block b in
  let i = Builder.add b b0 (Instr.Binop (Instr.Add, d, u, u)) in
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[ d ] in
  let fs = lint ~mem_size:1024 f in
  Alcotest.(check bool) "GL001 reported" true (has_code "GL001" fs);
  Alcotest.(check bool) "anchored at the read" true
    (List.exists (fun x -> x.Lint.code = "GL001" && x.Lint.iid = i.Instr.id) fs);
  (* The same register as live-in is fine: inputs initialize it. *)
  let b = Builder.create ~name:"livein" () in
  let u = Builder.reg b and d = Builder.reg b in
  let b0 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Binop (Instr.Add, d, u, u)));
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[ u ] ~live_out:[ d ] in
  Alcotest.(check (list string))
    "live-in read is clean" []
    (codes (lint ~mem_size:1024 f))

let test_gl002_unreachable () =
  let b = Builder.create ~name:"unreach" () in
  let r = Builder.reg b in
  let b0 = Builder.block b in
  let dead = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (r, 1)));
  ignore (Builder.terminate b b0 Instr.Return);
  let i = Builder.add b dead (Instr.Const (r, 2)) in
  ignore (Builder.terminate b dead Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[] in
  let fs = lint ~mem_size:1024 f in
  Alcotest.(check bool) "GL002 reported at the dead block's head" true
    (List.exists (fun x -> x.Lint.code = "GL002" && x.Lint.iid = i.Instr.id) fs)

let test_gl003_dead_store () =
  let b = Builder.create ~name:"deadstore" () in
  let a = Builder.reg b and v = Builder.reg b in
  let m = Builder.region b "m" in
  let b0 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (a, 8)));
  ignore (Builder.add b b0 (Instr.Const (v, 1)));
  let s1 = Builder.add b b0 (Instr.Store (m, a, 0, v)) in
  ignore (Builder.add b b0 (Instr.Store (m, a, 0, v)));
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[] in
  let fs = lint ~mem_size:1024 f in
  Alcotest.(check bool) "GL003 anchored at the overwritten store" true
    (List.exists
       (fun x -> x.Lint.code = "GL003" && x.Lint.iid = s1.Instr.id)
       fs);
  (* An intervening possibly-aliasing load keeps the store alive. *)
  let b = Builder.create ~name:"livestore" () in
  let a = Builder.reg b and v = Builder.reg b and t = Builder.reg b in
  let m = Builder.region b "m" in
  let b0 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (a, 8)));
  ignore (Builder.add b b0 (Instr.Const (v, 1)));
  ignore (Builder.add b b0 (Instr.Store (m, a, 0, v)));
  ignore (Builder.add b b0 (Instr.Load (m, t, a, 0)));
  ignore (Builder.add b b0 (Instr.Store (m, a, 0, v)));
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[ t ] in
  Alcotest.(check (list string))
    "read keeps the store" []
    (codes (lint ~mem_size:1024 f))

let test_gl004_out_of_bounds () =
  let b = Builder.create ~name:"oob" () in
  let a = Builder.reg b and v = Builder.reg b in
  let m = Builder.region b "m" in
  let b0 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (a, 5000)));
  ignore (Builder.add b b0 (Instr.Const (v, 1)));
  let s = Builder.add b b0 (Instr.Store (m, a, 0, v)) in
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[] in
  let fs = lint ~mem_size:1024 f in
  Alcotest.(check bool) "GL004 reported" true
    (List.exists (fun x -> x.Lint.code = "GL004" && x.Lint.iid = s.Instr.id) fs);
  (* Same function under a memory large enough to contain the address:
     the must-analysis no longer applies. *)
  Alcotest.(check (list string))
    "in-bounds under 65536" []
    (codes (lint ~mem_size:65536 f))

let test_gl005_gl006_communication () =
  let b = Builder.create ~name:"comm" () in
  let r = Builder.reg b in
  let b0 = Builder.block b in
  ignore (Builder.add b b0 (Instr.Const (r, 1)));
  let p = Builder.add b b0 (Instr.Produce_sync 0) in
  ignore (Builder.terminate b b0 Instr.Return);
  let f = Builder.finish b ~live_in:[] ~live_out:[] in
  let fs = lint ~mem_size:1024 f in
  Alcotest.(check bool) "GL006 at the produce" true
    (List.exists (fun x -> x.Lint.code = "GL006" && x.Lint.iid = p.Instr.id) fs);
  Alcotest.(check bool) "GL005 queue imbalance at return" true
    (has_code "GL005" fs)

(* ------------------------ ordering + positions -------------------- *)

let pos_source =
  String.concat "\n"
    [
      "gmt-ir v1";
      "workload \"lintpos\"";
      "mem_size 1024";
      "";
      "func \"lintpos\" (regs: 3, live_in: [], live_out: [])";
      "regions: [m0 = \"m\"]";
      "entry: B0";
      "B0:";
      "  i0: r0 = 2000";
      "  i1: store m0[r0 + 0] = r0";
      "  i2: r1 = add r2, r2";
      "  i3: return";
      "";
    ]

let test_positions_and_order () =
  let w, pos =
    match Text.parse_pos ~file:"lintpos.gmt" pos_source with
    | Ok wp -> wp
    | Error e -> Alcotest.failf "parse: %s" (Text.render_error e)
  in
  let module W = Gmt_workloads.Workload in
  let fs = lint ~pos ~mem_size:w.W.mem_size w.W.func in
  Alcotest.(check (list string))
    "both findings, source order" [ "GL004"; "GL001" ] (codes fs);
  List.iter
    (fun x ->
      if x.Lint.line = 0 then
        Alcotest.failf "finding %s not positioned" (Lint.render x))
    fs;
  (* i1 sits on line 10 of the source above, i2 on line 11. *)
  (match fs with
  | oob :: uninit :: _ ->
    Alcotest.(check int) "GL004 line" 10 oob.Lint.line;
    Alcotest.(check int) "GL001 line" 11 uninit.Lint.line;
    Alcotest.(check bool) "columns 1-based" true
      (oob.Lint.col >= 1 && uninit.Lint.col >= 1)
  | _ -> Alcotest.fail "expected two findings");
  (* Determinism: two runs render identically. *)
  let render fs = String.concat "\n" (List.map Lint.render fs) in
  Alcotest.(check string)
    "re-run renders identically" (render fs)
    (render (lint ~pos ~mem_size:w.W.mem_size w.W.func));
  (* The report order is the documented sort key. *)
  let keys =
    List.map (fun x -> (x.Lint.line, x.Lint.col, x.Lint.code, x.Lint.iid)) fs
  in
  Alcotest.(check bool) "sorted by (line, col, code, id)" true
    (List.sort compare keys = keys)

(* --------------------------- the corpus --------------------------- *)

let test_suite_clean () =
  let module W = Gmt_workloads.Workload in
  List.iter
    (fun (w : W.t) ->
      match lint ~mem_size:w.W.mem_size w.W.func with
      | [] -> ()
      | fs ->
        Alcotest.failf "%s: %s" w.W.name
          (String.concat "; " (List.map Lint.render fs)))
    (Gmt_workloads.Suite.all ())

let tests =
  [
    Alcotest.test_case "clean function" `Quick test_clean;
    Alcotest.test_case "GL001 uninitialized read" `Quick test_gl001_uninit_read;
    Alcotest.test_case "GL002 unreachable block" `Quick test_gl002_unreachable;
    Alcotest.test_case "GL003 dead store" `Quick test_gl003_dead_store;
    Alcotest.test_case "GL004 out of bounds" `Quick test_gl004_out_of_bounds;
    Alcotest.test_case "GL005/GL006 stray communication" `Quick
      test_gl005_gl006_communication;
    Alcotest.test_case "positions and ordering" `Quick
      test_positions_and_order;
    Alcotest.test_case "workload suite lints clean" `Quick test_suite_clean;
  ]
